//! Per-node runtime: ready queue, worker cores, data store, and the
//! ACTIVATE / GET DATA / put protocol handlers (paper Figure 1).
//!
//! The scheduler hot path is built on dense, allocation-lean structures
//! (PaRSEC keeps its task/dependence bookkeeping dense for exactly this
//! reason — §4 of the paper attributes small-granularity scaling to
//! per-task runtime overhead):
//!
//! * the data store is a per-version **byte table** (`VersionStore::Dense`)
//!   indexed by the contiguous `VersionId`, with real payloads held in a
//!   side map only for versions that carry bytes;
//! * the ready and pending-GET queues are bucketed per-priority FIFO rings
//!   ([`crate::queue::BucketQueue`]) reproducing the seed heap's exact
//!   `(priority, Reverse(seq))` pop order;
//! * per-completion allocations are swept: trace track names are interned
//!   at construction, ACTIVATE destination grouping reuses a scratch vector
//!   driven by an epoch-stamped per-node best-priority table (O(consumers)
//!   instead of the seed's O(consumers²) scan), and kernel input marshaling
//!   reuses one scratch buffer.
//!
//! `ClusterConfig::reference_sched` switches the store and queues back to
//! the seed structures (`HashMap` store, `BinaryHeap` queues, per-task
//! temporaries) so benches and differential tests can compare both
//! datapaths in one binary; virtual-time results are byte-identical either
//! way.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use amt_comm::{AmEvent, CommEngine, PutEvent, PutRequest};
use amt_netmodel::NodeId;
use amt_simnet::{CoreHandle, OnlineStats, OverlapTracker, Shared, Sim, SimTime, Trace};
use bytes::{Bytes, BytesMut};

use crate::config::{ClusterConfig, ExecMode};
use crate::graph::{GraphHandle, TaskId, VersionId};
use crate::queue::ReadyQueue;
use crate::records::{ActivateRec, GetRec, PutCb, ACTIVATE_WIRE_BYTES, GET_WIRE_BYTES};
use crate::window::WindowCtl;

/// AM tag for task-activation messages.
pub(crate) const AM_ACTIVATE: u64 = 1;
/// AM tag for data requests.
pub(crate) const AM_GETDATA: u64 = 2;
/// One-sided callback tag for data arrival.
pub(crate) const RTAG_DATA: u64 = 1;

/// Flow-arrow kind: ACTIVATE announcement (producer → consumer).
const FLOW_ACTIVATE: u64 = 0;
/// Flow-arrow kind: bulk data put (owner → consumer).
const FLOW_DATA: u64 = 1;

/// Deterministic Chrome-trace flow id, unique per (kind, version, src,
/// dst) — 12 bits per node id, 38 for the version.
fn flow_id(kind: u64, version: u64, src: NodeId, dst: NodeId) -> u64 {
    (kind << 62) | (version << 24) | ((src as u64) << 12) | dst as u64
}

/// Seed-faithful store entry (`reference_sched` mode).
enum RefDataState {
    /// Payload available locally (bytes absent in CostOnly mode).
    Present(Option<Bytes>),
    /// Announced by an ACTIVATE; GET DATA queued or in flight.
    Requested,
}

const V_VACANT: u8 = 0;
const V_REQUESTED: u8 = 1;
const V_PRESENT: u8 = 2;
const V_PRESENT_DATA: u8 = 3;

/// Per-version data-presence table. Dense mode is a byte per version
/// (VersionIds are contiguous indices) with payload bytes in a side map;
/// sparse mode ([`crate::ClusterConfig::flyweight`]) keeps only the
/// versions this node has actually touched in a hash map, so per-node
/// memory is O(versions-seen-here) instead of O(all versions) × nodes;
/// reference mode is the seed's `HashMap<VersionId, DataState>`. All three
/// implement the same state machine — scheduling is byte-identical.
enum VersionStore {
    Dense {
        state: Vec<u8>,
        payloads: HashMap<usize, Bytes>,
    },
    Sparse {
        state: HashMap<usize, u8>,
        payloads: HashMap<usize, Bytes>,
    },
    Reference(HashMap<usize, RefDataState>),
}

impl VersionStore {
    fn new(reference: bool, flyweight: bool) -> VersionStore {
        if reference {
            VersionStore::Reference(HashMap::new())
        } else if flyweight {
            VersionStore::Sparse {
                state: HashMap::new(),
                payloads: HashMap::new(),
            }
        } else {
            VersionStore::Dense {
                state: Vec::new(),
                payloads: HashMap::new(),
            }
        }
    }

    fn ensure_len(&mut self, n: usize) {
        if let VersionStore::Dense { state, .. } = self {
            if state.len() < n {
                state.resize(n, V_VACANT);
            }
        }
    }

    fn get(&self, v: usize) -> u8 {
        match self {
            VersionStore::Dense { state, .. } => state.get(v).copied().unwrap_or(V_VACANT),
            VersionStore::Sparse { state, .. } => state.get(&v).copied().unwrap_or(V_VACANT),
            VersionStore::Reference(_) => unreachable!("reference store has no byte states"),
        }
    }

    /// Any entry at all (Present *or* Requested)?
    fn exists(&self, v: usize) -> bool {
        match self {
            VersionStore::Reference(m) => m.contains_key(&v),
            _ => self.get(v) != V_VACANT,
        }
    }

    fn is_present(&self, v: usize) -> bool {
        match self {
            VersionStore::Reference(m) => matches!(m.get(&v), Some(RefDataState::Present(_))),
            _ => self.get(v) >= V_PRESENT,
        }
    }

    /// Write state byte `to` for `v`, returning the previous byte.
    /// Dense mode requires `v` to be covered by `ensure_len`.
    fn set(&mut self, v: usize, to: u8) -> u8 {
        match self {
            VersionStore::Dense { state, .. } => std::mem::replace(&mut state[v], to),
            VersionStore::Sparse { state, .. } => state.insert(v, to).unwrap_or(V_VACANT),
            VersionStore::Reference(_) => unreachable!("reference store has no byte states"),
        }
    }

    /// Mark `v` present; returns whether the slot was previously vacant.
    fn insert_present(&mut self, v: usize, bytes: Option<Bytes>) -> bool {
        if let VersionStore::Reference(m) = self {
            return m.insert(v, RefDataState::Present(bytes)).is_none();
        }
        let prev = match bytes {
            Some(b) => {
                self.payloads().insert(v, b);
                self.set(v, V_PRESENT_DATA)
            }
            None => self.set(v, V_PRESENT),
        };
        prev == V_VACANT
    }

    /// Mark `v` requested; returns whether the slot was previously vacant.
    fn insert_requested(&mut self, v: usize) -> bool {
        if let VersionStore::Reference(m) = self {
            return m.insert(v, RefDataState::Requested).is_none();
        }
        self.set(v, V_REQUESTED) == V_VACANT
    }

    /// Requested → Present transition on data arrival; returns whether the
    /// previous state was Requested.
    fn fulfill(&mut self, v: usize, bytes: Option<Bytes>) -> bool {
        if let VersionStore::Reference(m) = self {
            return matches!(
                m.insert(v, RefDataState::Present(bytes)),
                Some(RefDataState::Requested)
            );
        }
        let prev = match bytes {
            Some(b) => {
                self.payloads().insert(v, b);
                self.set(v, V_PRESENT_DATA)
            }
            None => self.set(v, V_PRESENT),
        };
        prev == V_REQUESTED
    }

    fn payloads(&mut self) -> &mut HashMap<usize, Bytes> {
        match self {
            VersionStore::Dense { payloads, .. } | VersionStore::Sparse { payloads, .. } => {
                payloads
            }
            VersionStore::Reference(_) => unreachable!("reference store holds payloads inline"),
        }
    }

    /// Payload bytes of a present version (None for cost-only entries).
    fn payload(&self, v: usize) -> Option<Bytes> {
        match self {
            VersionStore::Dense { payloads, .. } | VersionStore::Sparse { payloads, .. } => {
                if self.get(v) == V_PRESENT_DATA {
                    payloads.get(&v).cloned()
                } else {
                    None
                }
            }
            VersionStore::Reference(m) => match m.get(&v) {
                Some(RefDataState::Present(b)) => b.clone(),
                _ => None,
            },
        }
    }

    fn payload_len(&self, v: usize) -> Option<usize> {
        match self {
            VersionStore::Dense { payloads, .. } | VersionStore::Sparse { payloads, .. } => {
                if self.get(v) == V_PRESENT_DATA {
                    payloads.get(&v).map(|b| b.len())
                } else {
                    None
                }
            }
            VersionStore::Reference(m) => match m.get(&v) {
                Some(RefDataState::Present(Some(b))) => Some(b.len()),
                _ => None,
            },
        }
    }

    /// Release a retired version's payload bytes, keeping it Present
    /// (windowed-mode memory reclamation).
    fn drop_payload(&mut self, v: usize) {
        match self {
            VersionStore::Reference(m) => {
                if let Some(e @ RefDataState::Present(Some(_))) = m.get_mut(&v) {
                    *e = RefDataState::Present(None);
                }
            }
            _ => {
                if self.get(v) == V_PRESENT_DATA {
                    self.payloads().remove(&v);
                    self.set(v, V_PRESENT);
                }
            }
        }
    }
}

/// A pending GET DATA request (queued behind the in-flight window).
struct GetInfo {
    version: usize,
    src: NodeId,
    size: usize,
    activate_sent_at_ns: u64,
}

/// Mutable scheduler state, behind one `RefCell` (the immutable identity —
/// node id, graph handle, engine, config, interned trace names — lives
/// directly on [`NodeRt`], so hot paths borrow only what mutates).
struct NodeState {
    reference: bool,
    idle_workers: Vec<usize>,
    ready: ReadyQueue<TaskId>,
    /// Unsatisfied input count per *local* task, indexed by
    /// [`crate::graph::Task::local_ix`] — O(tasks-on-this-node), not
    /// O(total tasks).
    remaining: Vec<u32>,
    store: VersionStore,
    pending_gets: ReadyQueue<GetInfo>,
    inflight_gets: usize,
    inflight_get_bytes: usize,
    /// Multicast subtrees to forward once the version's data arrives.
    pending_forwards: HashMap<usize, (Vec<u32>, i64, u64)>,
    /// Entry count of `pending_forwards`; gates the per-arrival map lookup
    /// (zero for every workload that doesn't use multicast trees).
    forwards_pending: usize,
    seq: u64,
    executed: u64,
    worker_busy: SimTime,
    /// Per task-class execution counts and busy time.
    class_stats: HashMap<&'static str, (u64, SimTime)>,
    /// End-to-end latency per flow: ACTIVATE send → data arrival (§6.4.2).
    e2e: OnlineStats,
    /// Individual ACTIVATE message latency (§6.4.3).
    msg_lat: OnlineStats,
    /// Control-path latency: ACTIVATE send → GET DATA arrival at the data
    /// owner (the software component of the end-to-end path, excluding the
    /// bulk transfer itself).
    req_lat: OnlineStats,
    /// Optional execution timeline (Chrome-trace export).
    trace: Trace,
    /// Cluster-wide compute/wire concurrency integrator (metrics mode).
    overlap: Option<Shared<OverlapTracker>>,
    /// Kernel-input marshaling scratch (reused across completions).
    inputs_scratch: Vec<Bytes>,
    /// ACTIVATE destination-grouping scratch (dense mode).
    dests_scratch: Vec<(NodeId, i64)>,
    /// Epoch-stamped best-priority-per-node table for `announce` grouping.
    node_best: Vec<(u64, i64)>,
    node_epoch: u64,
}

impl NodeState {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

pub(crate) struct NodeRt {
    pub node: NodeId,
    pub graph: GraphHandle,
    pub engine: Rc<CommEngine>,
    /// Shared cluster config — one allocation for the whole cluster
    /// (the cost-model map alone would otherwise be cloned per node).
    pub cfg: Rc<ClusterConfig>,
    pub workers: Vec<CoreHandle>,
    trace_on: bool,
    /// Interned `n{i}.comm` trace track name (no `format!` per send);
    /// empty when tracing is off.
    comm_track: String,
    /// Interned `n{i}.w{j}` trace track names (no `format!` per task);
    /// empty when tracing is off.
    worker_tracks: Vec<String>,
    state: RefCell<NodeState>,
    /// Windowed-discovery driver, when executing via
    /// [`crate::Cluster::execute_windowed`].
    window: RefCell<Option<Rc<WindowCtl>>>,
}

pub(crate) type RtHandle = Rc<NodeRt>;

impl NodeRt {
    pub fn new(
        node: NodeId,
        graph: GraphHandle,
        engine: Rc<CommEngine>,
        cfg: Rc<ClusterConfig>,
        workers: Vec<CoreHandle>,
        overlap: Option<Shared<OverlapTracker>>,
    ) -> NodeRt {
        let nworkers = workers.len();
        // Task/worker indices are packed into one closure word in
        // `dispatch`.
        assert!(nworkers <= 1 << 16, "worker index must fit 16 bits");
        let trace = Trace::new(cfg.trace);
        let reference = cfg.reference_sched;
        // Track-name strings are only read under `trace_on`; skip the
        // per-node allocations on untraced runs (1024 nodes × 128 workers
        // of them otherwise).
        let (comm_track, worker_tracks) = if cfg.trace {
            (
                format!("n{node}.comm"),
                (0..nworkers).map(|w| format!("n{node}.w{w}")).collect(),
            )
        } else {
            (String::new(), Vec::new())
        };
        NodeRt {
            node,
            graph,
            engine,
            trace_on: cfg.trace,
            comm_track,
            worker_tracks,
            state: RefCell::new(NodeState {
                reference,
                idle_workers: (0..nworkers).rev().collect(),
                ready: ReadyQueue::new(reference),
                remaining: Vec::new(),
                store: VersionStore::new(reference, cfg.flyweight),
                pending_gets: ReadyQueue::new(reference),
                inflight_gets: 0,
                inflight_get_bytes: 0,
                pending_forwards: HashMap::new(),
                forwards_pending: 0,
                seq: 0,
                executed: 0,
                worker_busy: SimTime::ZERO,
                class_stats: HashMap::new(),
                e2e: OnlineStats::new(),
                msg_lat: OnlineStats::new(),
                req_lat: OnlineStats::new(),
                trace,
                overlap,
                inputs_scratch: Vec::new(),
                dests_scratch: Vec::new(),
                // Grown on demand in `announce` — nodes that never send a
                // wide announce (most of a 1024-node cluster) keep it empty
                // instead of O(nodes) each.
                node_best: Vec::new(),
                node_epoch: 0,
            }),
            window: RefCell::new(None),
            cfg,
            workers,
        }
    }

    pub(crate) fn set_window(&self, w: Option<Rc<WindowCtl>>) {
        *self.window.borrow_mut() = w;
    }

    /// Initialize local state: resident initial data, dependence counters,
    /// initially-ready tasks, and ACTIVATEs for initial data needed
    /// remotely.
    pub fn init(rt: &RtHandle, sim: &mut Sim) {
        let node = rt.node;
        {
            let g = rt.graph.get();
            let mut s = rt.state.borrow_mut();
            s.remaining = vec![0; g.local_task_count(node)];
            s.store.ensure_len(g.version_count());
            for i in 0..g.version_count() {
                let v = g.version(i);
                if v.producer.is_none() && v.home == node {
                    s.store.insert_present(i, v.initial.clone());
                }
            }
            for i in 0..g.task_count() {
                let t = g.task(i);
                if t.node != node {
                    continue;
                }
                let missing = t.inputs.iter().filter(|v| !s.store.is_present(v.0)).count();
                s.remaining[t.local_ix as usize] = missing as u32;
                if missing == 0 {
                    let seq = s.next_seq();
                    s.ready.push(t.priority, seq, i);
                }
            }
        }
        // Announce initial data to remote consumers (pseudo-completion of a
        // "source" task at t=0).
        let nversions = rt.graph.get().version_count();
        for i in 0..nversions {
            let local_source = {
                let g = rt.graph.get();
                let v = g.version(i);
                v.producer.is_none() && v.home == node
            };
            if local_source {
                NodeRt::announce(rt, sim, VersionId(i), None);
            }
        }
        NodeRt::dispatch(rt, sim);
    }

    /// Send ACTIVATE records for `version` to every remote node that
    /// consumes it. In multithreaded mode the worker sends directly and the
    /// costs are returned for charging to the worker (`None` ⇒ funneled).
    fn announce(rt: &RtHandle, sim: &mut Sim, version: VersionId, mt_cost: Option<&mut SimTime>) {
        let node = rt.node;
        // Group remote consumers by node in first-appearance order,
        // tracking the best priority per node through an epoch-stamped
        // table — one pass, no quadratic rescans.
        let (mut dests, size, from_scratch) = {
            let g = rt.graph.get();
            let v = g.version(version.0);
            let mut s = rt.state.borrow_mut();
            let size = s.store.payload_len(version.0).unwrap_or(v.size);
            s.node_epoch += 1;
            let epoch = s.node_epoch;
            let from_scratch = !s.reference;
            let mut dests: Vec<(NodeId, i64)> = if from_scratch {
                std::mem::take(&mut s.dests_scratch)
            } else {
                // Seed allocation behavior: a fresh grouping vector per
                // announce.
                Vec::new()
            };
            dests.clear();
            for &t in &v.consumers {
                let task = g.task(t);
                if task.node == node {
                    continue;
                }
                if s.node_best.len() <= task.node {
                    s.node_best.resize(task.node + 1, (0, 0));
                }
                let e = &mut s.node_best[task.node];
                if e.0 != epoch {
                    *e = (epoch, task.priority);
                    dests.push((task.node, task.priority));
                } else if task.priority > e.1 {
                    e.1 = task.priority;
                }
            }
            for d in dests.iter_mut() {
                d.1 = s.node_best[d.0].1;
            }
            (dests, size, from_scratch)
        };
        if dests.is_empty() {
            if from_scratch {
                rt.state.borrow_mut().dests_scratch = dests;
            }
            return;
        }
        let mt = mt_cost.is_some() && rt.cfg.multithread_am;
        let sent_at = sim.now().as_ns();
        let mut extra = SimTime::ZERO;

        // Wide broadcasts go through a multicast tree (Figure 1): binomial
        // recursive halving by default, k-way when `multicast_k` is set.
        if rt.cfg.bcast_tree_min.is_some_and(|m| dests.len() >= m) {
            let best_priority = dests.iter().map(|(_, p)| *p).max().expect("non-empty");
            let mut ids: Vec<u32> = dests.iter().map(|(n, _)| *n as u32).collect();
            ids.sort_unstable();
            for (child, subtree) in NodeRt::split_subtree(rt, &ids) {
                let rec = ActivateRec {
                    version: version.0 as u64,
                    size: size as u64,
                    priority: best_priority,
                    sent_at_ns: sent_at,
                    forward: subtree,
                };
                extra += NodeRt::send_activate(rt, sim, child as NodeId, &rec, mt);
            }
        } else {
            // Record bodies differ only by priority here; encode once per
            // distinct priority into a pooled buffer and send clones of the
            // shared frame (wire bytes identical to per-destination
            // encodes; the refcount-checked pool never reclaims a shared
            // buffer early).
            let mut encoded: Vec<(i64, Bytes)> = Vec::new();
            for &(dst, priority) in &dests {
                let payload = match encoded.iter().find(|(p, _)| *p == priority) {
                    Some((_, b)) => b.clone(),
                    None => {
                        let rec =
                            ActivateRec::direct(version.0 as u64, size as u64, priority, sent_at);
                        let b = rec.encode_one_with(rt.engine.buf_pool());
                        encoded.push((priority, b.clone()));
                        b
                    }
                };
                extra += NodeRt::send_activate_encoded(
                    rt,
                    sim,
                    dst,
                    version.0 as u64,
                    ACTIVATE_WIRE_BYTES,
                    payload,
                    mt,
                );
            }
        }
        if from_scratch {
            let mut s = rt.state.borrow_mut();
            dests.clear();
            s.dests_scratch = dests;
        }
        if let Some(c) = mt_cost {
            *c += extra;
        }
    }

    /// Emit one ACTIVATE record; returns the cost to charge the sending
    /// worker (multithreaded mode only — funneled submits are free to the
    /// caller, the communication thread pays).
    fn send_activate(
        rt: &RtHandle,
        sim: &mut Sim,
        dst: NodeId,
        rec: &ActivateRec,
        mt: bool,
    ) -> SimTime {
        let wire = ACTIVATE_WIRE_BYTES + 4 * rec.forward.len();
        let payload = rec.encode_one_with(rt.engine.buf_pool());
        NodeRt::send_activate_encoded(rt, sim, dst, rec.version, wire, payload, mt)
    }

    /// [`NodeRt::send_activate`] with the record already encoded — the
    /// announce loop encodes identical bodies once and sends shared clones.
    fn send_activate_encoded(
        rt: &RtHandle,
        sim: &mut Sim,
        dst: NodeId,
        version: u64,
        wire: usize,
        payload: Bytes,
        mt: bool,
    ) -> SimTime {
        let engine = &rt.engine;
        if rt.trace_on {
            let id = flow_id(FLOW_ACTIVATE, version, rt.node, dst);
            rt.state.borrow_mut().trace.flow_start(
                rt.comm_track.clone(),
                "activate",
                id,
                sim.now(),
            );
        }
        if mt {
            engine.send_am_direct(sim, dst, AM_ACTIVATE, wire, Some(payload))
        } else {
            engine.send_am(sim, dst, AM_ACTIVATE, wire, Some(payload));
            rt.cfg.cost.submit_cost
        }
    }

    /// Split a multicast destination list into child subtrees: k-way when
    /// the configuration names an arity, binomial recursive halving
    /// otherwise.
    fn split_subtree(rt: &RtHandle, ids: &[u32]) -> Vec<(u32, Vec<u32>)> {
        match rt.cfg.multicast_k {
            Some(k) => crate::records::tree_children_k(ids, k),
            None => crate::records::tree_children(ids),
        }
    }

    /// Forward a multicast announcement down the subtree once the data is
    /// locally present (called from the communication-thread context).
    fn forward_subtree(
        rt: &RtHandle,
        sim: &mut Sim,
        version: VersionId,
        subtree: &[u32],
        priority: i64,
        sent_at_ns: u64,
        size: usize,
    ) {
        for (child, sub) in NodeRt::split_subtree(rt, subtree) {
            let rec = ActivateRec {
                version: version.0 as u64,
                size: size as u64,
                priority,
                sent_at_ns,
                forward: sub,
            };
            let wire = ACTIVATE_WIRE_BYTES + 4 * rec.forward.len();
            if rt.trace_on {
                let id = flow_id(FLOW_ACTIVATE, rec.version, rt.node, child as NodeId);
                rt.state.borrow_mut().trace.flow_start(
                    rt.comm_track.clone(),
                    "activate",
                    id,
                    sim.now(),
                );
            }
            let engine = &rt.engine;
            engine.send_am(
                sim,
                child as NodeId,
                AM_ACTIVATE,
                wire,
                Some(rec.encode_one_with(engine.buf_pool())),
            );
        }
    }

    /// Assign ready tasks to idle workers.
    pub fn dispatch(rt: &RtHandle, sim: &mut Sim) {
        loop {
            let (task, widx, dur) = {
                let mut s = rt.state.borrow_mut();
                if s.ready.is_empty() || s.idle_workers.is_empty() {
                    return;
                }
                let task = s.ready.pop().expect("checked non-empty").item;
                let widx = s.idle_workers.pop().expect("checked non-empty");
                let g = rt.graph.get();
                let t = g.task(task);
                let dur = rt.cfg.cost.task_charge(t.name, t.flops, t.efficiency);
                s.worker_busy += dur;
                let entry = s.class_stats.entry(t.name).or_insert((0, SimTime::ZERO));
                entry.0 += 1;
                entry.1 += dur;
                if let Some(o) = &s.overlap {
                    o.borrow_mut().busy_add(rt.node, sim.now(), 1);
                }
                (task, widx, dur)
            };
            // Two captured words (handle + packed indices) keep the
            // completion closure on the simulator's inline small-closure
            // path — no per-task event box.
            let rt2 = rt.clone();
            let packed = ((task as u64) << 16) | widx as u64;
            let core = rt.workers[widx].clone();
            core.borrow_mut().charge(sim, dur, move |sim| {
                NodeRt::task_done(
                    &rt2,
                    sim,
                    (packed >> 16) as TaskId,
                    (packed & 0xffff) as usize,
                );
            });
        }
    }

    /// A task finished on a worker: run its kernel (Numeric mode), store
    /// outputs, release local consumers, announce to remote ones, then
    /// return the worker to the idle pool.
    fn task_done(rt: &RtHandle, sim: &mut Sim, task: TaskId, widx: usize) {
        let noutputs;
        {
            let g = rt.graph.get();
            let t = g.task(task);
            noutputs = t.outputs.len();
            if rt.trace_on {
                // The duration is a pure function of the task, so the
                // execution span is reconstructed here instead of carrying
                // it through the completion closure.
                let dur = rt.cfg.cost.task_charge(t.name, t.flops, t.efficiency);
                let end = sim.now();
                rt.state.borrow_mut().trace.record(
                    rt.worker_tracks[widx].clone(),
                    t.name,
                    end - dur,
                    end,
                );
            }

            // Execute the kernel on real payloads.
            let kernel = (rt.cfg.mode == ExecMode::Numeric)
                .then_some(t.kernel.as_ref())
                .flatten();
            let outs: Option<Vec<Bytes>> = if let Some(kernel) = kernel {
                let mut inputs = std::mem::take(&mut rt.state.borrow_mut().inputs_scratch);
                inputs.clear();
                {
                    let s = rt.state.borrow();
                    for v in &t.inputs {
                        // Control (size-0) inputs carry no payload and
                        // are not handed to kernels.
                        if g.version(v.0).size > 0 {
                            inputs.push(s.store.payload(v.0).unwrap_or_else(|| {
                                panic!("task {} ran without input version {:?} present", t.name, v)
                            }));
                        }
                    }
                }
                let outs = kernel(&inputs);
                assert_eq!(outs.len(), t.outputs.len(), "kernel output arity");
                inputs.clear();
                rt.state.borrow_mut().inputs_scratch = inputs;
                Some(outs)
            } else {
                None
            };

            let mut s = rt.state.borrow_mut();
            s.executed += 1;
            match outs {
                Some(outs) => {
                    for (vid, b) in t.outputs.iter().zip(outs) {
                        let fresh = s.store.insert_present(vid.0, Some(b));
                        assert!(fresh, "output version produced twice");
                    }
                }
                None if s.reference => {
                    // Seed allocation behavior: a per-completion
                    // `Vec<Option<Bytes>>` even when every entry is None.
                    let outputs: Vec<Option<Bytes>> = t.outputs.iter().map(|_| None).collect();
                    for (vid, b) in t.outputs.iter().zip(outputs) {
                        let fresh = s.store.insert_present(vid.0, b);
                        assert!(fresh, "output version produced twice");
                    }
                }
                None => {
                    for vid in &t.outputs {
                        let fresh = s.store.insert_present(vid.0, None);
                        assert!(fresh, "output version produced twice");
                    }
                }
            }
        }

        // Release local consumers of each output.
        for oi in 0..noutputs {
            let vid = rt.graph.get().task(task).outputs[oi];
            NodeRt::release_local(rt, vid);
        }

        // Announce to remote consumers; in multithreaded mode the send cost
        // extends the worker's occupancy.
        let mut extra = SimTime::ZERO;
        for oi in 0..noutputs {
            let vid = rt.graph.get().task(task).outputs[oi];
            NodeRt::announce(rt, sim, vid, Some(&mut extra));
        }

        // Windowed discovery: retire this task and pull the next window of
        // tasks from the graph source.
        let wctl = rt.window.borrow().clone();
        if let Some(w) = wctl {
            WindowCtl::on_complete(&w, sim, task);
        }

        let rt2 = rt.clone();
        let core = rt.workers[widx].clone();
        if extra.is_zero() {
            extra = SimTime::from_ns(1);
        }
        rt.state.borrow_mut().worker_busy += extra;
        core.borrow_mut().charge(sim, extra, move |sim| {
            {
                let mut s = rt2.state.borrow_mut();
                s.idle_workers.push(widx);
                if let Some(o) = &s.overlap {
                    o.borrow_mut().busy_add(rt2.node, sim.now(), -1);
                }
            }
            NodeRt::dispatch(&rt2, sim);
        });
        NodeRt::dispatch(rt, sim);
    }

    fn release_local(rt: &RtHandle, version: VersionId) {
        let g = rt.graph.get();
        let mut s = rt.state.borrow_mut();
        for &c in &g.version(version.0).consumers {
            // Data can arrive here while consumers on *other* nodes — long
            // since satisfied from their own copies — have completed and had
            // their graph chunk freed by windowed retirement. A freed
            // consumer finished already, so there is nothing to release.
            let Some(t) = g.task_if_live(c) else {
                continue;
            };
            if t.node != rt.node {
                continue;
            }
            let rem = &mut s.remaining[t.local_ix as usize];
            debug_assert!(*rem > 0, "double release of task {c}");
            *rem -= 1;
            if *rem == 0 {
                let seq = s.next_seq();
                s.ready.push(t.priority, seq, c);
            }
        }
    }

    /// ACTIVATE callback (communication-thread context): prioritize each
    /// announced flow and request it now or defer it behind the in-flight
    /// window (§4.1).
    pub fn on_activate(rt: &RtHandle, sim: &mut Sim, ev: AmEvent) -> SimTime {
        let recs = ActivateRec::decode_frames(&ev.data);
        // The arrival buffers are dead after decoding: feed them back to the
        // engine's pool so outgoing encodes reuse them instead of
        // allocating.
        rt.engine.buf_pool().recycle_frames(ev.data);
        let mut cost = SimTime::ZERO;
        {
            let mut s = rt.state.borrow_mut();
            let now_ns = sim.now().as_ns();
            let mut ctl_released = Vec::new();
            for rec in &recs {
                cost += rt.cfg.cost.activate_record_cost;
                s.msg_lat.record(
                    (SimTime::from_ns(now_ns) - SimTime::from_ns(rec.sent_at_ns)).as_us_f64(),
                );
                if rt.trace_on {
                    let id = flow_id(FLOW_ACTIVATE, rec.version, ev.src, rt.node);
                    s.trace
                        .flow_end(rt.comm_track.clone(), "activate", id, sim.now());
                }
                let vid = rec.version as usize;
                if rec.size == 0 {
                    // Control dependency (PaRSEC CTL flow): the ACTIVATE
                    // itself satisfies it — no GET DATA / put round trip.
                    let fresh = s.store.insert_present(vid, None);
                    assert!(fresh, "version announced twice to one node");
                    ctl_released.push((VersionId(vid), rec.clone()));
                    continue;
                }
                let fresh = s.store.insert_requested(vid);
                assert!(fresh, "version announced twice to one node");
                if !rec.forward.is_empty() {
                    s.pending_forwards
                        .insert(vid, (rec.forward.clone(), rec.priority, rec.sent_at_ns));
                    s.forwards_pending += 1;
                }
                let seq = s.next_seq();
                s.pending_gets.push(
                    rec.priority,
                    seq,
                    GetInfo {
                        version: vid,
                        src: ev.src,
                        size: rec.size as usize,
                        activate_sent_at_ns: rec.sent_at_ns,
                    },
                );
            }
            drop(s);
            if !ctl_released.is_empty() {
                for (vid, rec) in ctl_released {
                    NodeRt::release_local(rt, vid);
                    if !rec.forward.is_empty() {
                        NodeRt::forward_subtree(
                            rt,
                            sim,
                            vid,
                            &rec.forward,
                            rec.priority,
                            rec.sent_at_ns,
                            0,
                        );
                    }
                }
                let rt2 = rt.clone();
                sim.schedule_now(move |sim| NodeRt::dispatch(&rt2, sim));
            }
        }
        cost + NodeRt::pump_gets(rt, sim)
    }

    /// Send GET DATA for the highest-priority pending flows while the
    /// in-flight window has room. Communication-thread context.
    fn pump_gets(rt: &RtHandle, sim: &mut Sim) -> SimTime {
        let mut cost = SimTime::ZERO;
        loop {
            // With the adaptive controller on, the engine narrows or widens
            // the flow window around the configured base as wire congestion
            // moves; off, this is exactly `rt.cfg.get_window`.
            let window = rt.engine.tuned_get_window(rt.cfg.get_window);
            let get = {
                let mut s = rt.state.borrow_mut();
                if s.inflight_gets >= window {
                    return cost;
                }
                let next_size = match s.pending_gets.peek() {
                    Some(g) => g.size,
                    None => return cost,
                };
                // Byte budget (priority-relative deferral): beyond the
                // minimum concurrency, defer fetches that would exceed it.
                if rt.cfg.get_window_bytes > 0
                    && s.inflight_gets >= rt.cfg.get_window_min_flows
                    && s.inflight_get_bytes + next_size > rt.cfg.get_window_bytes
                {
                    return cost;
                }
                let g = s.pending_gets.pop().expect("peeked non-empty").item;
                s.inflight_gets += 1;
                s.inflight_get_bytes += g.size;
                g
            };
            let rec = GetRec {
                version: get.version as u64,
                activate_sent_at_ns: get.activate_sent_at_ns,
            };
            let engine = &rt.engine;
            // GETs issue from communication-thread context and historically
            // never aggregate; with a batching window configured for their
            // tag they are batch-eligible like any other record.
            let batch = engine.batch_window_for(get.src, AM_GETDATA) > 0;
            engine.send_am_opts(
                sim,
                get.src,
                AM_GETDATA,
                GET_WIRE_BYTES,
                Some(rec.encode_with(engine.buf_pool())),
                batch,
            );
            cost += rt.cfg.cost.get_send_cost;
        }
    }

    /// GET DATA callback at the data owner: start the put (Figure 1).
    pub fn on_getdata(rt: &RtHandle, sim: &mut Sim, ev: AmEvent) -> SimTime {
        let recs = GetRec::decode_frames(&ev.data);
        rt.engine.buf_pool().recycle_frames(ev.data);
        let mut cost = SimTime::ZERO;
        for rec in recs {
            {
                let mut s = rt.state.borrow_mut();
                let lat = sim.now() - SimTime::from_ns(rec.activate_sent_at_ns);
                s.req_lat.record(lat.as_us_f64());
                if rt.trace_on {
                    let id = flow_id(FLOW_DATA, rec.version, rt.node, ev.src);
                    s.trace
                        .flow_start(rt.comm_track.clone(), "data", id, sim.now());
                }
            }
            let (size, data) = {
                let s = rt.state.borrow();
                let vid = rec.version as usize;
                assert!(
                    s.store.is_present(vid),
                    "GET DATA for version not present at owner"
                );
                match s.store.payload(vid) {
                    Some(b) => (b.len(), Some(b)),
                    None => (rt.graph.get().version(vid).size, None),
                }
            };
            cost += rt.cfg.cost.get_request_cost;
            let cb = PutCb {
                version: rec.version,
                activate_sent_at_ns: rec.activate_sent_at_ns,
            };
            let engine = &rt.engine;
            engine.put(
                sim,
                PutRequest {
                    dst: ev.src,
                    size,
                    data,
                    r_tag: RTAG_DATA,
                    cb_data: cb.encode_with(engine.buf_pool()),
                    on_local: Box::new(|_sim, _eng| SimTime::ZERO),
                },
            );
        }
        cost
    }

    /// Data-arrival callback (one-sided completion at the consumer node):
    /// store the payload, record end-to-end latency, release consumers.
    pub fn on_data(rt: &RtHandle, sim: &mut Sim, ev: PutEvent) -> SimTime {
        let cb = PutCb::decode(ev.cb_data.clone());
        let vid = VersionId(cb.version as usize);
        {
            let mut s = rt.state.borrow_mut();
            let e2e_us = (sim.now() - SimTime::from_ns(cb.activate_sent_at_ns)).as_us_f64();
            s.e2e.record(e2e_us);
            if rt.trace_on {
                let id = flow_id(FLOW_DATA, cb.version, ev.src, rt.node);
                s.trace
                    .flow_end(rt.comm_track.clone(), "data", id, sim.now());
            }
            let was_requested = s.store.fulfill(vid.0, ev.data);
            assert!(was_requested, "data arrived for un-requested version");
            debug_assert!(s.inflight_gets > 0);
            s.inflight_gets -= 1;
            s.inflight_get_bytes = s.inflight_get_bytes.saturating_sub(ev.size);
        }
        let cost = rt.cfg.cost.arrival_cost;
        NodeRt::release_local(rt, vid);
        // Multicast relay: now that the data is local, announce it down the
        // subtree; children will GET it from this node.
        let fwd = {
            let mut s = rt.state.borrow_mut();
            if s.forwards_pending > 0 {
                let f = s.pending_forwards.remove(&vid.0);
                if f.is_some() {
                    s.forwards_pending -= 1;
                }
                f
            } else {
                None
            }
        };
        if let Some((subtree, priority, sent_at_ns)) = fwd {
            NodeRt::forward_subtree(rt, sim, vid, &subtree, priority, sent_at_ns, ev.size);
        }
        let cost = cost + NodeRt::pump_gets(rt, sim);
        // Worker dispatch happens outside the communication thread.
        let rt2 = rt.clone();
        sim.schedule_now(move |sim| NodeRt::dispatch(&rt2, sim));
        cost
    }

    /// Payload of the current state of `version`, if locally present.
    pub fn data(&self, version: VersionId) -> Option<Bytes> {
        self.state.borrow().store.payload(version.0)
    }

    // ---- report accessors (cluster.rs) ------------------------------

    pub(crate) fn executed(&self) -> u64 {
        self.state.borrow().executed
    }

    pub(crate) fn worker_busy(&self) -> SimTime {
        self.state.borrow().worker_busy
    }

    pub(crate) fn merge_stats(
        &self,
        e2e: &mut OnlineStats,
        msg: &mut OnlineStats,
        req: &mut OnlineStats,
        classes: &mut HashMap<&'static str, (u64, SimTime)>,
    ) {
        let s = self.state.borrow();
        e2e.merge(&s.e2e);
        msg.merge(&s.msg_lat);
        req.merge(&s.req_lat);
        for (name, (n, busy)) in &s.class_stats {
            let e = classes.entry(name).or_insert((0, SimTime::ZERO));
            e.0 += n;
            e.1 += *busy;
        }
    }

    pub(crate) fn merge_trace_into(&self, t: &mut Trace) {
        t.merge_from(&self.state.borrow().trace);
    }

    // ---- windowed-discovery hooks (window.rs) -----------------------

    /// Grow the dense version table to cover newly discovered versions.
    /// (`remaining` is local_ix-indexed and grown per admitted local task
    /// by [`NodeRt::window_admit_local`] — sizing it to the *global* task
    /// count here would cost O(nodes × tasks) across the cluster.)
    pub(crate) fn window_ensure(&self, nversions: usize) {
        self.state.borrow_mut().store.ensure_len(nversions);
    }

    /// Seed a newly declared producer-less version at its home node.
    pub(crate) fn window_seed_initial(&self, version: usize, bytes: Option<Bytes>) {
        let fresh = self.state.borrow_mut().store.insert_present(version, bytes);
        assert!(fresh, "initial version seeded twice");
    }

    /// Does this node's store have any entry (Present or Requested) for
    /// `version`?
    pub(crate) fn store_has(&self, version: usize) -> bool {
        self.state.borrow().store.exists(version)
    }

    pub(crate) fn store_is_present(&self, version: usize) -> bool {
        self.state.borrow().store.is_present(version)
    }

    /// Size an in-store version announces with (actual payload length when
    /// bytes are held, declared size otherwise).
    pub(crate) fn announce_size(&self, version: usize, declared: usize) -> usize {
        self.state
            .borrow()
            .store
            .payload_len(version)
            .unwrap_or(declared)
    }

    /// Release a retired version's payload bytes (windowed reclamation).
    pub(crate) fn window_drop_payload(&self, version: usize) {
        self.state.borrow_mut().store.drop_payload(version);
    }

    /// Record the dependence count of a newly admitted local task; queues
    /// it when already satisfied. Returns whether it became ready.
    pub(crate) fn window_admit_local(
        &self,
        task: TaskId,
        local_ix: u32,
        priority: i64,
        missing: u32,
    ) -> bool {
        let mut s = self.state.borrow_mut();
        let ix = local_ix as usize;
        if s.remaining.len() <= ix {
            s.remaining.resize(ix + 1, 0);
        }
        s.remaining[ix] = missing;
        if missing == 0 {
            let seq = s.next_seq();
            s.ready.push(priority, seq, task);
            true
        } else {
            false
        }
    }

    /// Late ACTIVATE for a version whose remote consumer was discovered
    /// after the producer-side announce already happened (windowed mode).
    /// Mirrors the funneled init-announce path: `send_am`, no worker
    /// charge.
    pub(crate) fn send_late_activate(
        rt: &RtHandle,
        sim: &mut Sim,
        dst: NodeId,
        version: usize,
        size: usize,
        priority: i64,
    ) {
        let rec = ActivateRec::direct(version as u64, size as u64, priority, sim.now().as_ns());
        NodeRt::send_activate(rt, sim, dst, &rec, false);
    }
}

/// Encode several ACTIVATE records into one payload (used by tests).
#[allow(dead_code)]
pub(crate) fn encode_records(recs: &[ActivateRec]) -> Bytes {
    let mut b = BytesMut::with_capacity(recs.iter().map(|r| r.enc_len()).sum());
    for r in recs {
        r.encode_into(&mut b);
    }
    b.freeze()
}
