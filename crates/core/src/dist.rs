//! Data distributions: which node owns which datum.

use amt_netmodel::NodeId;

/// Maps data keys to owning nodes.
pub trait DataDist {
    fn owner(&self, key: u64) -> NodeId;
}

/// Round-robin 1-D distribution.
#[derive(Debug, Clone)]
pub struct Cyclic1d {
    pub nodes: usize,
}

impl DataDist for Cyclic1d {
    fn owner(&self, key: u64) -> NodeId {
        (key as usize) % self.nodes
    }
}

/// 2-D block-cyclic tile distribution over a `p × q` process grid, the
/// layout DPLASMA/HiCMA use. Keys encode tile coordinates as
/// `row * cols + col`.
#[derive(Debug, Clone)]
pub struct TileDist2d {
    /// Tiles per matrix dimension.
    pub rows: u64,
    pub cols: u64,
    /// Process grid.
    pub p: usize,
    pub q: usize,
}

impl TileDist2d {
    /// Choose a near-square process grid for `nodes` nodes.
    pub fn square_grid(rows: u64, cols: u64, nodes: usize) -> Self {
        let mut p = (nodes as f64).sqrt() as usize;
        while p > 1 && !nodes.is_multiple_of(p) {
            p -= 1;
        }
        let p = p.max(1);
        TileDist2d {
            rows,
            cols,
            p,
            q: nodes / p,
        }
    }

    pub fn key(&self, row: u64, col: u64) -> u64 {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    pub fn coords(&self, key: u64) -> (u64, u64) {
        (key / self.cols, key % self.cols)
    }

    pub fn nodes(&self) -> usize {
        self.p * self.q
    }
}

impl DataDist for TileDist2d {
    fn owner(&self, key: u64) -> NodeId {
        let (r, c) = self.coords(key);
        (r as usize % self.p) * self.q + (c as usize % self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_wraps() {
        let d = Cyclic1d { nodes: 3 };
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(5), 2);
    }

    #[test]
    fn tile2d_roundtrip_and_ownership() {
        let d = TileDist2d {
            rows: 8,
            cols: 8,
            p: 2,
            q: 2,
        };
        for r in 0..8 {
            for c in 0..8 {
                let k = d.key(r, c);
                assert_eq!(d.coords(k), (r, c));
                assert!(d.owner(k) < 4);
            }
        }
        // Neighbors in a row alternate across q.
        assert_ne!(d.owner(d.key(0, 0)), d.owner(d.key(0, 1)));
        // Same (r%p, c%q) → same owner.
        assert_eq!(d.owner(d.key(0, 0)), d.owner(d.key(2, 4)));
    }

    #[test]
    fn square_grid_factors() {
        let d = TileDist2d::square_grid(10, 10, 6);
        assert_eq!(d.p * d.q, 6);
        assert!(d.p <= d.q);
        let d = TileDist2d::square_grid(10, 10, 16);
        assert_eq!((d.p, d.q), (4, 4));
        let d = TileDist2d::square_grid(10, 10, 1);
        assert_eq!((d.p, d.q), (1, 1));
    }

    #[test]
    fn tile2d_balances_load() {
        let d = TileDist2d::square_grid(16, 16, 4);
        let mut counts = [0usize; 4];
        for r in 0..16 {
            for c in 0..16 {
                counts[d.owner(d.key(r, c))] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
    }
}
