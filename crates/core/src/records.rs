//! Wire-record encodings for the runtime's protocol messages.
//!
//! ACTIVATE messages carry one record per announced dataflow; the
//! communication engine may aggregate several records to the same
//! destination into one wire message (§4.3), so records are fixed-size and
//! self-delimiting. Timestamps ride along so the receiver can measure
//! per-message and end-to-end latency exactly as the paper does (§6.1.3 —
//! our virtual clock is global, so no clock synchronization is required).

use bytes::{Buf, BufMut, BufPool, Bytes, BytesMut, Frames};

/// Wire size charged per ACTIVATE record (the real runtime sends remote-deps
/// descriptors of roughly this size).
pub const ACTIVATE_WIRE_BYTES: usize = 48;
/// Wire size charged per GET DATA record.
pub const GET_WIRE_BYTES: usize = 32;

/// One announced dataflow: "task completed; version `v` is available".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivateRec {
    pub version: u64,
    pub size: u64,
    pub priority: i64,
    pub sent_at_ns: u64,
    /// Multicast subtree (Figure 1): nodes this receiver must forward the
    /// announcement to once the data has arrived. Empty for direct sends.
    pub forward: Vec<u32>,
}

impl ActivateRec {
    /// Fixed header bytes (excluding the forward list).
    pub const HDR_BYTES: usize = 34;

    pub fn direct(version: u64, size: u64, priority: i64, sent_at_ns: u64) -> Self {
        ActivateRec {
            version,
            size,
            priority,
            sent_at_ns,
            forward: Vec::new(),
        }
    }

    pub fn enc_len(&self) -> usize {
        Self::HDR_BYTES + 4 * self.forward.len()
    }

    pub fn encode_into(&self, b: &mut BytesMut) {
        b.put_u64_le(self.version);
        b.put_u64_le(self.size);
        b.put_i64_le(self.priority);
        b.put_u64_le(self.sent_at_ns);
        b.put_u16_le(self.forward.len() as u16);
        for &n in &self.forward {
            b.put_u32_le(n);
        }
    }

    #[cfg(test)]
    pub fn decode_all(b: Bytes) -> Vec<ActivateRec> {
        let mut out = Vec::new();
        Self::decode_into(b, &mut out);
        out
    }

    /// Decode an aggregated delivery frame by frame. Frames align to
    /// submission boundaries, so per-frame decoding yields exactly the
    /// records a decode of the concatenation would — without materializing
    /// the concatenation.
    pub fn decode_frames(f: &Frames) -> Vec<ActivateRec> {
        let mut out = Vec::new();
        for b in f.iter() {
            Self::decode_into(b.clone(), &mut out);
        }
        out
    }

    fn decode_into(mut b: Bytes, out: &mut Vec<ActivateRec>) {
        while b.has_remaining() {
            assert!(b.remaining() >= Self::HDR_BYTES, "torn ACTIVATE payload");
            let version = b.get_u64_le();
            let size = b.get_u64_le();
            let priority = b.get_i64_le();
            let sent_at_ns = b.get_u64_le();
            let n = b.get_u16_le() as usize;
            assert!(b.remaining() >= 4 * n, "torn ACTIVATE forward list");
            let forward = (0..n).map(|_| b.get_u32_le()).collect();
            out.push(ActivateRec {
                version,
                size,
                priority,
                sent_at_ns,
                forward,
            });
        }
    }

    #[cfg(test)]
    pub fn encode_one(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.enc_len());
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Encode into a buffer drawn from `pool`; steady-state ACTIVATE traffic
    /// reuses recycled arrival buffers instead of allocating.
    pub fn encode_one_with(&self, pool: &BufPool) -> Bytes {
        let mut b = pool.take(self.enc_len());
        self.encode_into(&mut b);
        b.freeze()
    }

    /// [`ActivateRec::encode_one_with`] over the thread-safe pool of the
    /// real-substrate transport.
    pub fn encode_one_shared(&self, pool: &bytes::SharedBufPool) -> Bytes {
        let mut b = pool.take(self.enc_len());
        self.encode_into(&mut b);
        b.freeze()
    }
}

/// Recursive-halving children assignment for a binomial multicast over the
/// (deterministically ordered) destination list: returns `(child, subtree)`
/// pairs; depth is O(log n).
pub fn tree_children(dests: &[u32]) -> Vec<(u32, Vec<u32>)> {
    let mut out = Vec::new();
    let mut rest = dests;
    while !rest.is_empty() {
        let half = rest.len().div_ceil(2);
        let (a, b) = rest.split_at(half);
        out.push((a[0], a[1..].to_vec()));
        rest = b;
    }
    out
}

/// K-way children assignment over the (deterministically ordered)
/// destination list: chunk the list into `k` near-equal runs, each headed
/// by its first destination with the rest as that child's forward subtree.
/// `k = 2` matches the shape (though not the exact splits) of
/// [`tree_children`]; larger `k` trades depth for per-node fan-out.
pub fn tree_children_k(dests: &[u32], k: usize) -> Vec<(u32, Vec<u32>)> {
    assert!(k >= 2, "multicast tree arity must be at least 2 (got {k})");
    let mut out = Vec::new();
    let mut rest = dests;
    let mut ways = k.min(rest.len().max(1));
    while !rest.is_empty() {
        let chunk = rest.len().div_ceil(ways);
        let (a, b) = rest.split_at(chunk);
        out.push((a[0], a[1..].to_vec()));
        rest = b;
        ways = ways.saturating_sub(1).max(1);
    }
    out
}

/// A GET DATA request: "send me version `v` now".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetRec {
    pub version: u64,
    pub activate_sent_at_ns: u64,
}

impl GetRec {
    pub const ENC_BYTES: usize = 16;

    #[cfg(test)]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::ENC_BYTES);
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Encode into a buffer drawn from `pool`.
    pub fn encode_with(&self, pool: &BufPool) -> Bytes {
        let mut b = pool.take(Self::ENC_BYTES);
        self.encode_into(&mut b);
        b.freeze()
    }

    /// [`GetRec::encode_with`] over the thread-safe pool of the real
    /// substrate transport.
    pub fn encode_shared(&self, pool: &bytes::SharedBufPool) -> Bytes {
        let mut b = pool.take(Self::ENC_BYTES);
        self.encode_into(&mut b);
        b.freeze()
    }

    fn encode_into(&self, b: &mut BytesMut) {
        b.put_u64_le(self.version);
        b.put_u64_le(self.activate_sent_at_ns);
    }

    #[cfg(test)]
    pub fn decode_all(b: Bytes) -> Vec<GetRec> {
        let mut out = Vec::with_capacity(b.len() / Self::ENC_BYTES);
        Self::decode_into(b, &mut out);
        out
    }

    /// Decode an aggregated delivery frame by frame (see
    /// [`ActivateRec::decode_frames`]).
    pub fn decode_frames(f: &Frames) -> Vec<GetRec> {
        let mut out = Vec::with_capacity(f.total_len() / Self::ENC_BYTES);
        for b in f.iter() {
            Self::decode_into(b.clone(), &mut out);
        }
        out
    }

    fn decode_into(mut b: Bytes, out: &mut Vec<GetRec>) {
        assert_eq!(b.len() % Self::ENC_BYTES, 0, "torn GET DATA payload");
        while b.has_remaining() {
            out.push(GetRec {
                version: b.get_u64_le(),
                activate_sent_at_ns: b.get_u64_le(),
            });
        }
    }
}

/// Callback data attached to the put, echoed to the target's one-sided
/// callback on data arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutCb {
    pub version: u64,
    pub activate_sent_at_ns: u64,
}

impl PutCb {
    #[cfg(test)]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(self.version);
        b.put_u64_le(self.activate_sent_at_ns);
        b.freeze()
    }

    /// Encode into a buffer drawn from `pool`.
    pub fn encode_with(&self, pool: &BufPool) -> Bytes {
        let mut b = pool.take(16);
        b.put_u64_le(self.version);
        b.put_u64_le(self.activate_sent_at_ns);
        b.freeze()
    }

    /// [`PutCb::encode_with`] over the thread-safe pool of the real
    /// substrate transport.
    pub fn encode_shared(&self, pool: &bytes::SharedBufPool) -> Bytes {
        let mut b = pool.take(16);
        b.put_u64_le(self.version);
        b.put_u64_le(self.activate_sent_at_ns);
        b.freeze()
    }

    pub fn decode(mut b: Bytes) -> Self {
        PutCb {
            version: b.get_u64_le(),
            activate_sent_at_ns: b.get_u64_le(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_records_roundtrip_aggregated() {
        let recs = [
            ActivateRec::direct(1, 100, -5, 42),
            ActivateRec {
                version: 2,
                size: 200,
                priority: 7,
                sent_at_ns: 43,
                forward: vec![3, 9, 11],
            },
        ];
        // Simulate engine-level aggregation: concatenated frames.
        let mut b = BytesMut::new();
        for r in &recs {
            r.encode_into(&mut b);
        }
        let dec = ActivateRec::decode_all(b.freeze());
        assert_eq!(dec, recs.to_vec());
    }

    #[test]
    fn frame_decode_matches_concatenated_decode() {
        let recs = [
            ActivateRec::direct(1, 100, -5, 42),
            ActivateRec {
                version: 2,
                size: 200,
                priority: 7,
                sent_at_ns: 43,
                forward: vec![3, 9, 11],
            },
            ActivateRec::direct(3, 300, 0, 44),
        ];
        // Zero-copy aggregation: one frame per submission.
        let mut frames = Frames::new();
        let mut concat = BytesMut::new();
        for r in &recs {
            frames.push(r.encode_one());
            r.encode_into(&mut concat);
        }
        assert_eq!(
            ActivateRec::decode_frames(&frames),
            ActivateRec::decode_all(concat.freeze())
        );

        let gets = [
            GetRec {
                version: 1,
                activate_sent_at_ns: 10,
            },
            GetRec {
                version: 2,
                activate_sent_at_ns: 20,
            },
        ];
        let mut frames = Frames::new();
        let mut concat = BytesMut::new();
        for g in &gets {
            frames.push(g.encode());
            concat.put_slice(&g.encode());
        }
        assert_eq!(
            GetRec::decode_frames(&frames),
            GetRec::decode_all(concat.freeze())
        );
    }

    #[test]
    fn tree_children_cover_all_nodes_log_depth() {
        let dests: Vec<u32> = (1..=15).collect();
        fn depth(d: &[u32]) -> usize {
            tree_children(d)
                .iter()
                .map(|(_, sub)| 1 + depth(sub))
                .max()
                .unwrap_or(0)
        }
        fn collect(d: &[u32], out: &mut Vec<u32>) {
            for (c, sub) in tree_children(d) {
                out.push(c);
                collect(&sub, out);
            }
        }
        let mut all = Vec::new();
        collect(&dests, &mut all);
        all.sort_unstable();
        assert_eq!(all, dests, "every destination covered exactly once");
        assert!(depth(&dests) <= 4, "15 nodes within log2 depth");
    }

    #[test]
    fn tree_children_k_cover_all_nodes_bounded_fanout() {
        fn collect(d: &[u32], k: usize, out: &mut Vec<u32>) {
            let children = tree_children_k(d, k);
            assert!(children.len() <= k, "fan-out exceeds arity");
            for (c, sub) in children {
                out.push(c);
                collect(&sub, k, out);
            }
        }
        for k in [2, 3, 4, 8] {
            for n in [1u32, 2, 5, 15, 33] {
                let dests: Vec<u32> = (1..=n).collect();
                let mut all = Vec::new();
                collect(&dests, k, &mut all);
                all.sort_unstable();
                assert_eq!(all, dests, "k={k} n={n}: coverage broken");
            }
        }
    }

    #[test]
    fn get_and_putcb_roundtrip() {
        let g = GetRec {
            version: 9,
            activate_sent_at_ns: 1234,
        };
        assert_eq!(GetRec::decode_all(g.encode()), vec![g]);
        let p = PutCb {
            version: 9,
            activate_sent_at_ns: 1234,
        };
        assert_eq!(PutCb::decode(p.encode()), p);
    }

    #[test]
    #[should_panic(expected = "torn ACTIVATE payload")]
    fn torn_payload_detected() {
        ActivateRec::decode_all(Bytes::from_static(&[0u8; 33]));
    }
}
