//! Randomized property tests for the DES engine primitives.
//!
//! These were originally `proptest` properties; the workspace now builds
//! offline, so each property is exercised over many seeded cases drawn from
//! the in-tree deterministic generator instead.

use amt_simnet::{shared, CoreResource, DetRng, Sim, SimTime, TokenPool};

const CASES: u64 = 64;

/// A core serves charges FIFO: completion times are the prefix sums of
/// the durations, regardless of the duration mix.
#[test]
fn core_charges_complete_at_prefix_sums() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x5151_0000 + case);
        let n = rng.gen_usize(1..50);
        let durs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..10_000)).collect();

        let mut sim = Sim::new();
        let core = CoreResource::new_shared("c");
        let log = shared(Vec::new());
        for &d in &durs {
            let log = log.clone();
            core.borrow_mut()
                .charge(&mut sim, SimTime::from_ns(d), move |sim| {
                    log.borrow_mut().push(sim.now().as_ns());
                });
        }
        sim.run();
        let mut acc = 0u64;
        let want: Vec<u64> = durs
            .iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect();
        assert_eq!(&*log.borrow(), &want, "case {case}");
        assert_eq!(core.borrow().busy_time().as_ns(), acc, "case {case}");
    }
}

/// Token pools conserve tokens: grants ≤ capacity at any time, and
/// after all releases the pool is full again.
#[test]
fn token_pool_conservation() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x7070_0000 + case);
        let capacity = rng.gen_usize(1..8);
        let requests = rng.gen_usize(1..40);

        let mut sim = Sim::new();
        let pool = TokenPool::new_shared("p", capacity);
        let in_use = shared(0usize);
        let peak = shared(0usize);
        for i in 0..requests {
            let pool2 = pool.clone();
            let in_use = in_use.clone();
            let peak = peak.clone();
            let p2 = pool.clone();
            p2.borrow_mut().acquire(&mut sim, move |sim| {
                {
                    let mut u = in_use.borrow_mut();
                    *u += 1;
                    let mut p = peak.borrow_mut();
                    *p = (*p).max(*u);
                }
                let in_use2 = in_use.clone();
                let pool3 = pool2.clone();
                sim.schedule_in(SimTime::from_ns(10 + i as u64), move |sim| {
                    *in_use2.borrow_mut() -= 1;
                    pool3.borrow_mut().release(sim);
                });
            });
        }
        sim.run();
        assert!(*peak.borrow() <= capacity, "case {case}");
        assert_eq!(*in_use.borrow(), 0, "case {case}");
        assert_eq!(pool.borrow().available(), capacity, "case {case}");
        assert_eq!(
            pool.borrow().acquired_total(),
            requests as u64,
            "case {case}"
        );
    }
}

/// run_until never passes the deadline and eventually drains.
#[test]
fn run_until_respects_deadline() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x1213_0000 + case);
        let n = rng.gen_usize(1..50);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let deadline = rng.gen_range(0..1000);

        let mut sim = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_ns(t), |_| {});
        }
        let drained = sim.run_until(SimTime::from_ns(deadline));
        assert!(sim.now().as_ns() <= deadline, "case {case}");
        let remaining = times.iter().filter(|&&t| t > deadline).count();
        assert_eq!(drained, remaining == 0, "case {case}");
        assert_eq!(sim.events_pending(), remaining, "case {case}");
        sim.run();
        assert_eq!(sim.events_pending(), 0, "case {case}");
    }
}
