//! Property tests for the DES engine primitives.

use amt_simnet::{shared, CoreResource, Sim, SimTime, TokenPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A core serves charges FIFO: completion times are the prefix sums of
    /// the durations, regardless of the duration mix.
    #[test]
    fn core_charges_complete_at_prefix_sums(durs in prop::collection::vec(1u64..10_000, 1..50)) {
        let mut sim = Sim::new();
        let core = CoreResource::new_shared("c");
        let log = shared(Vec::new());
        for &d in &durs {
            let log = log.clone();
            core.borrow_mut().charge(&mut sim, SimTime::from_ns(d), move |sim| {
                log.borrow_mut().push(sim.now().as_ns());
            });
        }
        sim.run();
        let mut acc = 0u64;
        let want: Vec<u64> = durs.iter().map(|d| { acc += d; acc }).collect();
        prop_assert_eq!(&*log.borrow(), &want);
        prop_assert_eq!(core.borrow().busy_time().as_ns(), acc);
    }

    /// Token pools conserve tokens: grants ≤ capacity at any time, and
    /// after all releases the pool is full again.
    #[test]
    fn token_pool_conservation(
        capacity in 1usize..8,
        requests in 1usize..40,
    ) {
        let mut sim = Sim::new();
        let pool = TokenPool::new_shared("p", capacity);
        let in_use = shared(0usize);
        let peak = shared(0usize);
        for i in 0..requests {
            let pool2 = pool.clone();
            let in_use = in_use.clone();
            let peak = peak.clone();
            let p2 = pool.clone();
            p2.borrow_mut().acquire(&mut sim, move |sim| {
                {
                    let mut u = in_use.borrow_mut();
                    *u += 1;
                    let mut p = peak.borrow_mut();
                    *p = (*p).max(*u);
                }
                let in_use2 = in_use.clone();
                let pool3 = pool2.clone();
                sim.schedule_in(SimTime::from_ns(10 + i as u64), move |sim| {
                    *in_use2.borrow_mut() -= 1;
                    pool3.borrow_mut().release(sim);
                });
            });
        }
        sim.run();
        prop_assert!(*peak.borrow() <= capacity);
        prop_assert_eq!(*in_use.borrow(), 0);
        prop_assert_eq!(pool.borrow().available(), capacity);
        prop_assert_eq!(pool.borrow().acquired_total(), requests as u64);
    }

    /// run_until never passes the deadline and eventually drains.
    #[test]
    fn run_until_respects_deadline(times in prop::collection::vec(0u64..1000, 1..50), deadline in 0u64..1000) {
        let mut sim = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_ns(t), |_| {});
        }
        let drained = sim.run_until(SimTime::from_ns(deadline));
        prop_assert!(sim.now().as_ns() <= deadline);
        let remaining = times.iter().filter(|&&t| t > deadline).count();
        prop_assert_eq!(drained, remaining == 0);
        prop_assert_eq!(sim.events_pending(), remaining);
        sim.run();
        prop_assert_eq!(sim.events_pending(), 0);
    }
}
