//! The execution **substrate seam**: the small set of services the runtime
//! layers above need from "whatever is executing them" — a time source, a
//! way to defer work, and a worker identity — abstracted so the *same*
//! scheduler/graph/comm stack can run on two very different engines:
//!
//! * the **virtual substrate** — the discrete-event simulator [`Sim`]
//!   itself (see [`VirtualSubstrate`]): time is the virtual clock,
//!   deferral is `schedule_now`, and there is no OS-thread worker
//!   identity. This path is single-threaded and byte-for-byte
//!   deterministic; nothing about it changed when the seam was
//!   introduced.
//! * the **real substrate** — the `amt-exec` work-stealing thread pool:
//!   time is a monotonic wall clock anchored at pool start, deferral
//!   pushes a job onto the calling worker's lock-free deque (or the
//!   global injector from outside the pool), and `worker()` names the OS
//!   worker thread running the closure.
//!
//! Code written against `&mut dyn Substrate` runs unmodified on either.
//! Deferred closures must be `Send` because the real substrate may steal
//! them onto another thread; the virtual substrate accepts the same
//! closures (a `Send` closure is trivially schedulable on the
//! single-threaded simulator). Virtual-path internals that capture
//! `Rc`-based state keep calling [`Sim::schedule_now`] directly — the seam
//! adds a capability, it does not tax the existing hot path.

use crate::engine::Sim;
use crate::time::SimTime;

/// Which engine is underneath a [`Substrate`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateKind {
    /// The discrete-event simulator: virtual time, single-threaded.
    Virtual,
    /// The `amt-exec` thread pool: wall-clock time, real OS threads.
    Real,
}

/// A unit of deferred work, executable on either substrate.
///
/// `Send` because the real substrate's work-stealing may move it across
/// threads between the `defer` call and execution.
pub type SubstrateJob = Box<dyn FnOnce(&mut dyn Substrate) + Send + 'static>;

/// The services the runtime needs from its execution engine. See the
/// module docs for the two implementations.
pub trait Substrate {
    /// Which engine this is (virtual clock vs wall clock).
    fn kind(&self) -> SubstrateKind;

    /// Current time: the virtual clock on the simulator, elapsed
    /// wall-clock time since pool start on the real pool. Both are
    /// monotonic within one run and start near zero, so latency
    /// *differences* computed over them are directly comparable.
    fn now(&self) -> SimTime;

    /// Identity of the executing worker thread, if any. `None` on the
    /// virtual substrate (all events run on the one simulator thread) and
    /// for calls from outside the pool on the real substrate.
    fn worker(&self) -> Option<usize>;

    /// Defer `job` for later execution: "as soon as possible, after the
    /// current event". On the simulator this is a zero-delay event; on the
    /// thread pool it is a spawn onto the local worker deque (LIFO, so
    /// freshly-released work runs hot) from which idle workers may steal.
    fn defer(&mut self, job: SubstrateJob);

    /// Observability hook: a task named `name`, belonging to simulated
    /// node `node`, executed on this substrate over `[start, end]`.
    ///
    /// The default is a no-op. The virtual substrate keeps it (virtual
    /// task spans are recorded by the per-node runtime, which knows the
    /// simulated core); the real pool overrides it to push a span into
    /// the executing worker's lock-free trace buffer, so wall-clock runs
    /// produce the same Chrome-trace vocabulary as simulated ones.
    fn trace_task(&mut self, name: &'static str, node: usize, start: SimTime, end: SimTime) {
        let _ = (name, node, start, end);
    }
}

/// The DES implementation of the seam **is** [`Sim`]: scheduling a
/// zero-delay event is the simulator's native "defer". This alias names
/// that role at call sites that talk about substrates rather than
/// simulators.
pub type VirtualSubstrate = Sim;

impl Substrate for Sim {
    fn kind(&self) -> SubstrateKind {
        SubstrateKind::Virtual
    }

    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn worker(&self) -> Option<usize> {
        None
    }

    fn defer(&mut self, job: SubstrateJob) {
        self.schedule_now(move |sim| job(sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn sim_implements_the_virtual_substrate() {
        let mut sim = Sim::new();
        assert_eq!(Substrate::kind(&sim), SubstrateKind::Virtual);
        assert_eq!(Substrate::worker(&sim), None);
        let ran = Rc::new(Cell::new(false));
        {
            // Deferred jobs nest: a job may defer another.
            let ran = ran.clone();
            sim.schedule_now(move |sim| {
                sim.defer(Box::new(move |sub| {
                    assert_eq!(sub.kind(), SubstrateKind::Virtual);
                    assert_eq!(sub.now(), Substrate::now(sub));
                }));
                ran.set(true);
            });
        }
        sim.run();
        assert!(ran.get(), "scheduled closure ran");
    }

    #[test]
    fn virtual_defer_preserves_time() {
        let mut sim = Sim::new();
        sim.schedule_now(|sim| {
            let before = Substrate::now(sim);
            sim.defer(Box::new(move |sub| {
                // Zero-delay deferral: virtual time does not advance.
                assert_eq!(sub.now(), before);
                assert_eq!(sub.kind(), SubstrateKind::Virtual);
                assert!(sub.worker().is_none());
            }));
        });
        sim.run();
    }
}
