//! Small deterministic pseudo-random generator for tests and benchmarks.
//!
//! The workspace builds offline, so tests cannot depend on external `rand`
//! or `proptest` crates. `DetRng` is a seedable splitmix64/xoshiro-style
//! generator: identical seeds yield identical sequences on every platform,
//! which is exactly what the deterministic-replay tests need. It is **not**
//! cryptographically secure and is not meant for production randomness.

/// Deterministic 64-bit PRNG (splitmix64-seeded xorshift*).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds give equal sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 scramble so that small consecutive seeds (0, 1, 2, ...)
        // still produce uncorrelated streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng {
            state: z.max(1), // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Marsaglia / Vigna)
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below what any test here can observe.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Random element of a slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_usize(0..xs.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_usize(0..i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(0);
        let mut b = DetRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
