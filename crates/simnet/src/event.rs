//! Type-erased event bodies with an inline small-closure representation.
//!
//! The seed engine stored every event as a `Box<dyn FnOnce(&mut Sim)>`,
//! paying one heap allocation per scheduled event. Almost every closure in
//! this workspace captures only a couple of `Rc` handles and an integer, so
//! [`EventFn`] keeps captures of up to [`INLINE_WORDS`] machine words
//! inline (no allocation at all) and falls back to a single boxed closure
//! only for larger captures. The queue side reuses slab slots (see
//! `engine.rs`), so the steady-state hot path touches the allocator for
//! neither the event body nor the queue node.

use std::marker::PhantomData;
use std::mem::{self, ManuallyDrop, MaybeUninit};

use crate::engine::Sim;

/// Number of machine words of capture state stored inline.
pub const INLINE_WORDS: usize = 3;

type InlineBuf = [MaybeUninit<usize>; INLINE_WORDS];

/// A type-erased `FnOnce(&mut Sim)` with inline storage for small captures.
///
/// Closures whose captures fit in [`INLINE_WORDS`] words (and are at most
/// word-aligned) are stored inline; larger ones are boxed. Either way the
/// value is exactly `INLINE_WORDS + 2` words and is invoked through one
/// indirect call.
pub struct EventFn {
    buf: InlineBuf,
    /// Invokes and consumes the stored closure; `buf` must not be touched
    /// again afterwards.
    call: unsafe fn(*mut InlineBuf, &mut Sim),
    /// Drops the stored closure without invoking it.
    drop_fn: unsafe fn(*mut InlineBuf),
    /// Events capture `Rc`/`RefCell` simulation components: keep the type
    /// `!Send`/`!Sync` even though the raw storage words would auto-derive
    /// them.
    _not_send: PhantomData<*mut ()>,
}

impl EventFn {
    /// Whether captures of closure type `F` fit the inline representation.
    #[inline]
    pub fn fits_inline<F>() -> bool {
        mem::size_of::<F>() <= mem::size_of::<InlineBuf>()
            && mem::align_of::<F>() <= mem::align_of::<usize>()
    }

    /// Wrap a closure, storing it inline when it fits.
    pub fn new<F: FnOnce(&mut Sim) + 'static>(f: F) -> Self {
        unsafe fn call_inline<F: FnOnce(&mut Sim)>(buf: *mut InlineBuf, sim: &mut Sim) {
            // Move the closure out of the buffer and run it.
            let f = unsafe { (buf as *mut F).read() };
            f(sim);
        }
        unsafe fn drop_inline<F>(buf: *mut InlineBuf) {
            unsafe { std::ptr::drop_in_place(buf as *mut F) };
        }
        unsafe fn call_boxed<F: FnOnce(&mut Sim)>(buf: *mut InlineBuf, sim: &mut Sim) {
            let b = unsafe { (buf as *mut *mut F).read() };
            let f = unsafe { Box::from_raw(b) };
            f(sim);
        }
        unsafe fn drop_boxed<F>(buf: *mut InlineBuf) {
            let b = unsafe { (buf as *mut *mut F).read() };
            drop(unsafe { Box::from_raw(b) });
        }

        let mut buf: InlineBuf = [MaybeUninit::uninit(); INLINE_WORDS];
        if Self::fits_inline::<F>() {
            // Size and alignment were checked, so the write is in-bounds
            // and sufficiently aligned.
            unsafe { (buf.as_mut_ptr() as *mut F).write(f) };
            EventFn {
                buf,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
                _not_send: PhantomData,
            }
        } else {
            let b = Box::into_raw(Box::new(f));
            unsafe { (buf.as_mut_ptr() as *mut *mut F).write(b) };
            EventFn {
                buf,
                call: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
                _not_send: PhantomData,
            }
        }
    }

    /// Run the stored closure, consuming the event.
    #[inline]
    pub fn invoke(self, sim: &mut Sim) {
        // The call consumes the closure, so suppress the drop glue.
        let mut this = ManuallyDrop::new(self);
        unsafe { (this.call)(&mut this.buf, sim) };
    }
}

impl Drop for EventFn {
    fn drop(&mut self) {
        unsafe { (self.drop_fn)(&mut self.buf) };
    }
}

impl std::fmt::Debug for EventFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventFn")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared;

    #[test]
    fn small_captures_are_inline() {
        assert!(EventFn::fits_inline::<fn(&mut Sim)>());
        let log = shared(0u64);
        let l = log.clone();
        // One Rc + nothing else: inline.
        let closure = move |_: &mut Sim| *l.borrow_mut() += 1;
        fn assert_fits<F: FnOnce(&mut Sim)>(_: &F) -> bool {
            EventFn::fits_inline::<F>()
        }
        assert!(assert_fits(&closure));
        let ev = EventFn::new(closure);
        let mut sim = Sim::new();
        ev.invoke(&mut sim);
        assert_eq!(*log.borrow(), 1);
    }

    #[test]
    fn large_captures_are_boxed_and_still_run() {
        let log = shared(Vec::new());
        let l = log.clone();
        let big = [7u64; 16];
        let closure = move |_: &mut Sim| l.borrow_mut().push(big[3]);
        fn fits<F: FnOnce(&mut Sim)>(_: &F) -> bool {
            EventFn::fits_inline::<F>()
        }
        assert!(!fits(&closure));
        let ev = EventFn::new(closure);
        let mut sim = Sim::new();
        ev.invoke(&mut sim);
        assert_eq!(*log.borrow(), vec![7]);
    }

    #[test]
    fn unexecuted_events_drop_their_captures() {
        let rc = std::rc::Rc::new(());
        {
            let c1 = rc.clone();
            let _small = EventFn::new(move |_| drop(c1));
            let c2 = rc.clone();
            let big = [0u64; 16];
            let _large = EventFn::new(move |_| {
                let _ = big;
                drop(c2)
            });
            assert_eq!(std::rc::Rc::strong_count(&rc), 3);
        }
        assert_eq!(std::rc::Rc::strong_count(&rc), 1);
    }
}
