//! Lightweight statistics collectors used across the workspace to measure
//! simulated quantities: message latencies, queue depths, utilizations.

use crate::time::SimTime;

/// A plain monotonically-increasing counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Roll back one increment (used by speculative-issue retry paths).
    #[inline]
    pub fn dec(&mut self) {
        debug_assert!(self.0 > 0, "counter underflow");
        self.0 -= 1;
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Streaming mean/variance/min/max over `f64` samples (Welford's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a virtual duration in microseconds.
    pub fn record_time_us(&mut self, t: SimTime) {
        self.record(t.as_us_f64());
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another collector into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth).
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(SimTime::ZERO, 0.0)
    }
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_t: start,
            last_v: initial,
            integral: 0.0,
            start,
            peak: initial,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time-weighted signal went backwards");
        self.integral += self.last_v * (t.saturating_sub(self.last_t)).as_secs_f64();
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Adjust the signal by `dv` at time `t`.
    pub fn add(&mut self, t: SimTime, dv: f64) {
        let v = self.last_v + dv;
        self.set(t, v);
    }

    pub fn value(&self) -> f64 {
        self.last_v
    }

    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.saturating_sub(self.start).as_secs_f64();
        if span == 0.0 {
            self.last_v
        } else {
            let tail = self.last_v * now.saturating_sub(self.last_t).as_secs_f64();
            (self.integral + tail) / span
        }
    }
}

/// A power-of-two-bucket histogram for positive quantities (latency in ns,
/// message sizes in bytes).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0.0,
        }
    }

    fn bucket_of(x: u64) -> usize {
        if x == 0 {
            0
        } else {
            (64 - x.leading_zeros()) as usize
        }
    }

    pub fn record(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x as f64;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram into this one (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Upper bound of the bucket containing the q-quantile (0 ≤ q ≤ 1).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_match_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_s(1), 10.0); // 0 for 1s
        g.set(SimTime::from_s(3), 0.0); // 10 for 2s
                                        // mean over [0, 4s] = (0*1 + 10*2 + 0*1) / 4 = 5
        assert!((g.mean(SimTime::from_s(4)) - 5.0).abs() < 1e-12);
        assert_eq!(g.peak(), 10.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for x in 1..=1000u64 {
            h.record(x);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Median of 1..=1000 is ~500, bucket bound 512.
        assert_eq!(h.quantile_bound(0.5), 512);
        assert_eq!(h.quantile_bound(1.0), 1024);
    }

    #[test]
    fn histogram_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        let b = h.nonzero_buckets();
        assert_eq!(b, vec![(0, 1), (2, 1)]);
    }
}
