//! # amt-simnet
//!
//! A deterministic, single-threaded discrete-event simulation (DES) engine.
//!
//! This crate is the substrate on which the rest of the `amtlc` workspace
//! simulates a multi-node HPC cluster: CPU cores, communication threads,
//! NICs and links are all modelled as *resources* whose occupancy is charged
//! in virtual time, while the actual Rust code for schedulers, matching
//! engines and protocol state machines runs for real inside events.
//!
//! ## Model
//!
//! * [`Sim`] owns a virtual clock and a two-level ladder/calendar queue of
//!   events (see `engine` module docs). An event is an `FnOnce(&mut Sim)`
//!   closure stored in an [`EventFn`] — inline when its captures fit three
//!   words, boxed otherwise. Events scheduled for the same virtual instant
//!   execute in scheduling order (a monotonic sequence number breaks ties),
//!   which makes every simulation fully deterministic.
//! * Components are ordinary Rust structs wrapped in `Rc<RefCell<_>>` and
//!   captured by the closures they schedule. The engine is single-threaded,
//!   so this is safe and cheap.
//! * [`CoreResource`] models a serially-occupied execution resource (a CPU
//!   core, a pinned communication thread, a NIC DMA engine): work items are
//!   served FIFO, each occupying the resource for a caller-supplied duration.
//! * [`TokenPool`] models bounded credit pools (request slots, packet pools)
//!   with FIFO waiter queues, used for back-pressure.
//!
//! ## Example
//!
//! ```
//! use amt_simnet::{Sim, SimTime};
//!
//! let mut sim = Sim::new();
//! sim.schedule_in(SimTime::from_us(5), |sim| {
//!     assert_eq!(sim.now(), SimTime::from_us(5));
//! });
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_us(5));
//! ```

mod engine;
mod event;
mod metrics;
pub mod reference;
mod resource;
pub mod rng;
mod stats;
pub mod substrate;
mod time;
mod trace;

pub use engine::{EventToken, Sim};
pub use event::EventFn;
pub use metrics::{MetricsRegistry, OverlapTracker};
pub use resource::{CoreHandle, CoreResource, TokenPool, TokenPoolHandle};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, OnlineStats, TimeWeighted};
pub use substrate::{Substrate, SubstrateJob, SubstrateKind, VirtualSubstrate};
pub use time::SimTime;
pub use trace::{json_escape, CounterSample, FlowEvent, FlowPhase, InstantEvent, Span, Trace};

/// Convenient alias used throughout the workspace for shared simulation
/// components.
pub type Shared<T> = std::rc::Rc<std::cell::RefCell<T>>;

/// Wrap a component for shared ownership inside the simulation.
pub fn shared<T>(value: T) -> Shared<T> {
    std::rc::Rc::new(std::cell::RefCell::new(value))
}

/// Clone shared handles into a closure without the `let x2 = x.clone()`
/// boilerplate:
///
/// ```
/// use amt_simnet::{cloned, shared, Sim, SimTime};
///
/// let mut sim = Sim::new();
/// let log = shared(Vec::new());
/// sim.schedule_in(
///     SimTime::from_us(1),
///     cloned!([log] move |sim| log.borrow_mut().push(sim.now())),
/// );
/// sim.run();
/// assert_eq!(log.borrow().len(), 1);
/// ```
///
/// Each listed name is shadowed by its clone in a block around the closure,
/// so the original handles stay usable afterwards. Keeping the capture list
/// to the handles the closure actually needs also keeps captures small,
/// which feeds the [`EventFn`] inline (allocation-free) representation.
#[macro_export]
macro_rules! cloned {
    ([$($name:ident),+ $(,)?] $closure:expr) => {{
        $(let $name = $name.clone();)+
        $closure
    }};
}
