//! Virtual time: a nanosecond-resolution instant/duration type.
//!
//! `SimTime` is used both as an instant (time since simulation start) and as
//! a duration; the arithmetic is identical and keeping one type avoids a
//! great deal of conversion noise in protocol code.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual time instant or duration, in integer nanoseconds.
///
/// `u64` nanoseconds cover ~584 years of virtual time, far beyond any run in
/// this workspace, while keeping comparisons and queue ordering exact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Construct from fractional nanoseconds.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration: {ns}");
        SimTime(ns.round() as u64)
    }

    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction, useful for "time remaining" computations.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {} - {}", self.0, rhs.0);
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_ns_f64(self.0 as f64 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimTime::from_ms(3), SimTime::from_us(3_000));
        assert_eq!(SimTime::from_s(3), SimTime::from_ms(3_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_ms(1_500));
        assert_eq!(SimTime::from_us_f64(0.5), SimTime::from_ns(500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_ns(1_234_567_891);
        assert!((t.as_secs_f64() - 1.234_567_891).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_ns(1_500)), "1.500us");
        assert_eq!(format!("{}", SimTime::from_us(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_ms(2_500)), "2.500000s");
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }
}
