//! A mergeable registry of named counters and latency histograms, plus the
//! two-signal time integrator behind the computation/communication overlap
//! metric.
//!
//! [`MetricsRegistry`] is the per-node sink the communication engine records
//! message-lifecycle stages into; registries merge across nodes and
//! serialize to *stable* JSON (BTreeMap ordering, integer nanoseconds) so
//! two identical simulated runs produce byte-identical reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats::Histogram;
use crate::time::SimTime;
use crate::trace::json_escape;

/// Named counters + histograms, recorded per node and merged for reports.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            ..Default::default()
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to the named counter (no-op when disabled).
    pub fn count(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record a sample into the named histogram (no-op when disabled).
    pub fn record(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Record a virtual duration in nanoseconds (no-op when disabled).
    pub fn record_time(&mut self, name: &str, t: SimTime) {
        self.record(name, t.as_ns());
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Cheap totals snapshot of the named histogram: `(count, sum)` with
    /// the sum truncated to integer units, `(0, 0)` when absent. This is
    /// the polling API the adaptive comm controller samples at its epoch
    /// boundaries — reading it never perturbs the registry.
    pub fn hist_totals(&self, name: &str) -> (u64, u64) {
        self.hists
            .get(name)
            .map_or((0, 0), |h| (h.count(), h.sum() as u64))
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry into this one (cross-node merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Append the stable JSON object body (counters + histograms) to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str(r#"{"counters":{"#);
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, r#""{}":{}"#, json_escape(k), v);
        }
        out.push_str(r#"},"histograms":{"#);
        first = true;
        for (k, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                r#""{}":{{"count":{},"sum":{},"p50":{},"p99":{},"buckets":["#,
                json_escape(k),
                h.count(),
                h.sum() as u64,
                h.quantile_bound(0.5),
                h.quantile_bound(0.99),
            );
            let mut bfirst = true;
            for (bound, count) in h.nonzero_buckets() {
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let _ = write!(out, "[{bound},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }

    /// Stable JSON serialization of this registry alone.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Per-node two-signal time integrator for the Fig. 3 overlap metric:
/// how much of the time a node spends receiving bulk data over the wire is
/// concurrent with at least one busy worker on that node.
///
/// Integration is in integer nanoseconds, so the resulting fractions are
/// bit-reproducible across identical runs.
#[derive(Debug, Default, Clone)]
pub struct OverlapTracker {
    nodes: Vec<NodeOverlap>,
}

#[derive(Debug, Default, Clone)]
struct NodeOverlap {
    last_t: SimTime,
    wire: u32,
    busy: u32,
    wire_time: SimTime,
    overlap_time: SimTime,
    busy_time: SimTime,
}

impl NodeOverlap {
    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_t);
        self.last_t = now;
        if dt == SimTime::ZERO {
            return;
        }
        if self.wire > 0 {
            self.wire_time += dt;
            if self.busy > 0 {
                self.overlap_time += dt;
            }
        }
        if self.busy > 0 {
            self.busy_time += dt;
        }
    }
}

impl OverlapTracker {
    pub fn new(nodes: usize) -> Self {
        OverlapTracker {
            nodes: vec![NodeOverlap::default(); nodes],
        }
    }

    /// A wire transfer towards `node` started (`delta = 1`) or finished
    /// (`delta = -1`) at `now`.
    pub fn wire_add(&mut self, node: usize, now: SimTime, delta: i32) {
        let n = &mut self.nodes[node];
        n.advance(now);
        n.wire = n.wire.checked_add_signed(delta).expect("wire underflow");
    }

    /// A worker on `node` became busy (`delta = 1`) or idle (`delta = -1`)
    /// at `now`.
    pub fn busy_add(&mut self, node: usize, now: SimTime, delta: i32) {
        let n = &mut self.nodes[node];
        n.advance(now);
        n.busy = n.busy.checked_add_signed(delta).expect("busy underflow");
    }

    /// Total (wire, overlapped) time across all nodes, integrated up to
    /// `now`.
    pub fn totals(&self, now: SimTime) -> (SimTime, SimTime) {
        let mut wire = SimTime::ZERO;
        let mut overlap = SimTime::ZERO;
        for n in &self.nodes {
            let mut n = n.clone();
            n.advance(now);
            wire += n.wire_time;
            overlap += n.overlap_time;
        }
        (wire, overlap)
    }

    /// Fraction of wire-transfer time concurrent with worker compute on the
    /// receiving node, in `[0, 1]`; 0 when no wire time was observed.
    pub fn fraction(&self, now: SimTime) -> f64 {
        let (wire, overlap) = self.totals(now);
        if wire == SimTime::ZERO {
            0.0
        } else {
            overlap.as_ns() as f64 / wire.as_ns() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::new(false);
        r.count("x", 3);
        r.record("h", 10);
        assert!(r.is_empty());
        assert_eq!(r.counter("x"), 0);
    }

    #[test]
    fn registry_merge_and_stable_json() {
        let mut a = MetricsRegistry::new(true);
        a.count("am.sent", 2);
        a.record("am.wire_ns", 100);
        let mut b = MetricsRegistry::new(true);
        b.count("am.sent", 3);
        b.count("put.done", 1);
        b.record("am.wire_ns", 900);
        a.merge(&b);
        assert_eq!(a.counter("am.sent"), 5);
        assert_eq!(a.counter("put.done"), 1);
        assert_eq!(a.hist("am.wire_ns").unwrap().count(), 2);
        assert_eq!(a.hist_totals("am.wire_ns"), (2, 1000));
        assert_eq!(a.hist_totals("absent"), (0, 0));
        let json = a.to_json();
        assert!(json.contains(r#""am.sent":5"#), "{json}");
        assert!(
            json.contains(r#""am.wire_ns":{"count":2,"sum":1000"#),
            "{json}"
        );
        // Stable: serializing twice is byte-identical.
        assert_eq!(json, a.to_json());
    }

    #[test]
    fn overlap_tracker_integrates_concurrency() {
        let mut o = OverlapTracker::new(2);
        let t = SimTime::from_us;
        // Node 0: wire [1, 5), busy [3, 9) → wire 4 us, overlap 2 us.
        o.wire_add(0, t(1), 1);
        o.busy_add(0, t(3), 1);
        o.wire_add(0, t(5), -1);
        o.busy_add(0, t(9), -1);
        // Node 1: wire [2, 4), never busy → wire 2 us, overlap 0.
        o.wire_add(1, t(2), 1);
        o.wire_add(1, t(4), -1);
        let (wire, overlap) = o.totals(t(10));
        assert_eq!(wire, t(6));
        assert_eq!(overlap, t(2));
        let f = o.fraction(t(10));
        assert!((f - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_open_intervals_up_to_now() {
        let mut o = OverlapTracker::new(1);
        o.busy_add(0, SimTime::ZERO, 1);
        o.wire_add(0, SimTime::from_us(1), 1);
        // Neither signal closed: integrate up to `now`.
        let (wire, overlap) = o.totals(SimTime::from_us(3));
        assert_eq!(wire, SimTime::from_us(2));
        assert_eq!(overlap, SimTime::from_us(2));
        assert_eq!(o.fraction(SimTime::from_us(3)), 1.0);
    }
}
