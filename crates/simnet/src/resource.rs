//! Serially-occupied resources and bounded token pools.

use std::collections::VecDeque;

use crate::engine::Sim;
use crate::event::EventFn;
use crate::time::SimTime;
use crate::Shared;

/// A serially-occupied execution resource: a CPU core, a pinned thread, a
/// NIC DMA engine, a link direction.
///
/// Work items are served in FIFO order; each occupies the resource for a
/// caller-supplied virtual duration, after which its completion closure runs.
/// The model is non-preemptive, which matches the paper's pathology of
/// interest: a long active-message callback occupying the communication
/// thread delays every other completion behind it.
pub struct CoreResource {
    name: String,
    busy_until: SimTime,
    busy_time: SimTime,
    jobs: u64,
}

/// Shared handle to a [`CoreResource`].
pub type CoreHandle = Shared<CoreResource>;

impl CoreResource {
    pub fn new(name: impl Into<String>) -> Self {
        CoreResource {
            name: name.into(),
            busy_until: SimTime::ZERO,
            busy_time: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// Shared-handle constructor.
    pub fn new_shared(name: impl Into<String>) -> CoreHandle {
        crate::shared(Self::new(name))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instant at which the resource next becomes free.
    #[inline]
    pub fn available_at(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource is free at virtual time `now`.
    #[inline]
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total virtual time this resource has been (or is committed to be)
    /// occupied.
    #[inline]
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Number of work items served.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization in `[0, 1]` over the interval `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.is_zero() {
            0.0
        } else {
            // Committed time may extend past `now`; clamp for reporting.
            self.busy_time.min(now).as_secs_f64() / now.as_secs_f64()
        }
    }

    /// Enqueue a work item of length `dur`; `then` runs when it completes.
    ///
    /// Returns the completion instant. The item starts when every previously
    /// charged item has finished (FIFO, non-preemptive).
    pub fn charge(
        &mut self,
        sim: &mut Sim,
        dur: SimTime,
        then: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        let start = self.busy_until.max(sim.now());
        let end = start + dur;
        self.busy_until = end;
        self.busy_time += dur;
        self.jobs += 1;
        sim.schedule_at(end, then);
        end
    }

    /// Charge occupancy without a completion callback (pure accounting).
    pub fn occupy(&mut self, now: SimTime, dur: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let end = start + dur;
        self.busy_until = end;
        self.busy_time += dur;
        self.jobs += 1;
        end
    }
}

/// A bounded pool of identical credits with a FIFO waiter queue.
///
/// Used to model the MPI backend's 30-entry concurrent-transfer cap and the
/// LCI packet pools whose exhaustion produces `Retry` back-pressure.
/// A queued waiter continuation (inline when its captures are small).
type Waiter = EventFn;

pub struct TokenPool {
    name: String,
    capacity: usize,
    available: usize,
    waiters: VecDeque<Waiter>,
    acquired_total: u64,
    wait_events: u64,
}

/// Shared handle to a [`TokenPool`].
pub type TokenPoolHandle = Shared<TokenPool>;

impl TokenPool {
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        TokenPool {
            name: name.into(),
            capacity,
            available: capacity,
            waiters: VecDeque::new(),
            acquired_total: 0,
            wait_events: 0,
        }
    }

    pub fn new_shared(name: impl Into<String>, capacity: usize) -> TokenPoolHandle {
        crate::shared(Self::new(name, capacity))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn available(&self) -> usize {
        self.available
    }

    pub fn in_use(&self) -> usize {
        self.capacity - self.available
    }

    pub fn waiters(&self) -> usize {
        self.waiters.len()
    }

    /// How many acquisitions had to wait (back-pressure metric).
    pub fn wait_events(&self) -> u64 {
        self.wait_events
    }

    pub fn acquired_total(&self) -> u64 {
        self.acquired_total
    }

    /// Take a token immediately if one is available.
    pub fn try_acquire(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            self.acquired_total += 1;
            true
        } else {
            false
        }
    }

    /// Acquire a token, running `then` now (same instant) if available or
    /// when a token is released otherwise (FIFO among waiters).
    pub fn acquire(&mut self, sim: &mut Sim, then: impl FnOnce(&mut Sim) + 'static) {
        if self.try_acquire() {
            sim.schedule_now(then);
        } else {
            self.wait_events += 1;
            self.waiters.push_back(EventFn::new(then));
        }
    }

    /// Return a token; hands it to the oldest waiter if any.
    pub fn release(&mut self, sim: &mut Sim) {
        if let Some(waiter) = self.waiters.pop_front() {
            // Token passes directly to the waiter.
            self.acquired_total += 1;
            sim.schedule_now_fn(waiter);
        } else {
            assert!(
                self.available < self.capacity,
                "token pool {}: release without acquire",
                self.name
            );
            self.available += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cloned, shared};

    #[test]
    fn core_serializes_fifo() {
        let mut sim = Sim::new();
        let core = CoreResource::new_shared("c0");
        let log = shared(Vec::new());
        for i in 0..3u32 {
            core.borrow_mut().charge(
                &mut sim,
                SimTime::from_us(10),
                cloned!([log] move |sim| {
                    log.borrow_mut().push((i, sim.now()));
                }),
            );
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                (0, SimTime::from_us(10)),
                (1, SimTime::from_us(20)),
                (2, SimTime::from_us(30)),
            ]
        );
        let core = core.borrow();
        assert_eq!(core.busy_time(), SimTime::from_us(30));
        assert_eq!(core.jobs(), 3);
    }

    #[test]
    fn core_idles_between_bursts() {
        let mut sim = Sim::new();
        let core = CoreResource::new_shared("c0");
        let done = shared(Vec::new());
        core.borrow_mut()
            .charge(&mut sim, SimTime::from_us(5), move |_| {});
        // Second burst arrives at t=100, after the core went idle at t=5.
        sim.schedule_at(
            SimTime::from_us(100),
            cloned!([core, done] move |sim| {
                core.borrow_mut().charge(
                    sim,
                    SimTime::from_us(5),
                    cloned!([done] move |sim| {
                        done.borrow_mut().push(sim.now());
                    }),
                );
            }),
        );
        sim.run();
        assert_eq!(*done.borrow(), vec![SimTime::from_us(105)]);
        // Utilization: 10us of work over 105us.
        assert!((core.borrow().utilization(SimTime::from_us(105)) - 10.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn token_pool_grants_and_blocks() {
        let mut sim = Sim::new();
        let pool = TokenPool::new_shared("p", 2);
        let log = shared(Vec::new());
        for i in 0..4u32 {
            pool.borrow_mut().acquire(
                &mut sim,
                cloned!([log] move |sim| log.borrow_mut().push((i, sim.now()))),
            );
        }
        // Two grants immediately, two waiting.
        sim.run();
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(pool.borrow().waiters(), 2);
        assert_eq!(pool.borrow().wait_events(), 2);

        // Release at t=50: waiter 2 runs.
        sim.schedule_at(
            SimTime::from_us(50),
            cloned!([pool] move |sim| pool.borrow_mut().release(sim)),
        );
        sim.run();
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(log.borrow()[2], (2, SimTime::from_us(50)));

        sim.schedule_at(
            SimTime::from_us(60),
            cloned!([pool] move |sim| pool.borrow_mut().release(sim)),
        );
        sim.run();
        assert_eq!(log.borrow()[3], (3, SimTime::from_us(60)));
        assert_eq!(pool.borrow().in_use(), 2);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn token_pool_over_release_panics() {
        let mut sim = Sim::new();
        let mut pool = TokenPool::new("p", 1);
        pool.release(&mut sim);
    }

    #[test]
    fn occupy_accounts_without_callback() {
        let mut core = CoreResource::new("c");
        let end = core.occupy(SimTime::from_us(3), SimTime::from_us(7));
        assert_eq!(end, SimTime::from_us(10));
        let end2 = core.occupy(SimTime::from_us(3), SimTime::from_us(1));
        assert_eq!(end2, SimTime::from_us(11));
    }
}
