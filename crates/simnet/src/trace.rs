//! Chrome-trace (chrome://tracing, Perfetto) export of simulated activity.
//!
//! Components record spans against named tracks (one per simulated core or
//! thread); [`Trace::to_chrome_json`] emits the standard `traceEvents`
//! array with microsecond timestamps, loadable in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev).

use std::fmt::Write as _;

use crate::time::SimTime;

/// One completed span on a track.
#[derive(Debug, Clone)]
pub struct Span {
    pub track: String,
    pub name: String,
    pub start: SimTime,
    pub end: SimTime,
}

/// A collector of spans, shared by reference among components.
#[derive(Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    pub fn new(enabled: bool) -> Self {
        Trace {
            spans: Vec::new(),
            enabled,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a completed span (no-op when disabled).
    pub fn record(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start);
        self.spans.push(Span {
            track: track.into(),
            name: name.into(),
            start,
            end,
        });
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Serialize as Chrome trace-event JSON (complete "X" events; one
    /// thread id per distinct track, in first-appearance order).
    pub fn to_chrome_json(&self) -> String {
        let mut tracks: Vec<String> = Vec::new();
        let mut out = String::from(r#"{"traceEvents":["#);
        let mut first = true;
        for s in &self.spans {
            let tid = match tracks.iter().position(|x| *x == s.track) {
                Some(i) => i,
                None => {
                    tracks.push(s.track.clone());
                    tracks.len() - 1
                }
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{:.3},"dur":{:.3}}}"#,
                s.name.replace('"', ""),
                tid,
                s.start.as_us_f64(),
                (s.end - s.start).as_us_f64()
            );
        }
        // Thread-name metadata so viewers label the tracks.
        for (tid, track) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
                tid, track
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.record("w0", "task", SimTime::ZERO, SimTime::from_us(1));
        assert!(t.is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new(true);
        t.record("n0.w0", "gemm", SimTime::from_us(1), SimTime::from_us(3));
        t.record(
            "n0.comm",
            "activate",
            SimTime::from_us(2),
            SimTime::from_us(4),
        );
        t.record("n0.w0", "trsm", SimTime::from_us(5), SimTime::from_us(6));
        let json = t.to_chrome_json();
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""name":"gemm""#));
        assert!(json.contains(r#""dur":2.000"#));
        assert!(json.contains("thread_name"));
        // Two distinct tracks → tids 0 and 1.
        assert!(json.contains(r#""tid":1"#));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_trace_is_valid_json_shell() {
        let t = Trace::new(true);
        assert_eq!(t.to_chrome_json(), r#"{"traceEvents":[]}"#);
    }
}
