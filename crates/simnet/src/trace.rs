//! Chrome-trace (chrome://tracing, Perfetto) export of simulated activity.
//!
//! Components record spans against named tracks (one per simulated core or
//! thread); [`Trace::to_chrome_json`] emits the standard `traceEvents`
//! array with microsecond timestamps, loadable in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Beyond complete `"X"` spans the trace supports:
//!
//! * **flow events** (`ph:"s"` / `ph:"f"`): arrows linking a send span on
//!   one track to the matching delivery span on another, paired by `id`;
//! * **counter tracks** (`ph:"C"`): sampled piecewise-constant signals
//!   (queue depths, in-flight transfers, NIC occupancy);
//! * **instant events** (`ph:"i"`): point markers for rare conditions
//!   (retries, delegations).

use std::fmt::Write as _;

use crate::time::SimTime;

/// Escape a string for embedding inside a JSON string literal.
///
/// Handles `\`, `"` and control characters; returns the input unchanged
/// (no allocation) when no escaping is needed. Shared by the trace and
/// metrics serializers.
pub fn json_escape(s: &str) -> std::borrow::Cow<'_, str> {
    if !s
        .chars()
        .any(|c| c == '"' || c == '\\' || (c as u32) < 0x20)
    {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// One completed span on a track.
#[derive(Debug, Clone)]
pub struct Span {
    pub track: String,
    pub name: String,
    pub start: SimTime,
    pub end: SimTime,
}

/// Which side of a flow arrow an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The producing side (`ph:"s"`).
    Start,
    /// The consuming side (`ph:"f"`).
    Finish,
}

/// One endpoint of a flow arrow, bound to the span enclosing `ts` on
/// `track`. Start/finish endpoints pair up by `id`.
#[derive(Debug, Clone)]
pub struct FlowEvent {
    pub track: String,
    pub name: String,
    pub id: u64,
    pub ts: SimTime,
    pub phase: FlowPhase,
}

/// One sample of a counter track (piecewise-constant signal).
#[derive(Debug, Clone)]
pub struct CounterSample {
    pub name: String,
    pub ts: SimTime,
    pub value: f64,
}

/// A point marker on a track.
#[derive(Debug, Clone)]
pub struct InstantEvent {
    pub track: String,
    pub name: String,
    pub ts: SimTime,
}

/// A collector of trace events, shared by reference among components.
#[derive(Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
    flows: Vec<FlowEvent>,
    counters: Vec<CounterSample>,
    instants: Vec<InstantEvent>,
    enabled: bool,
}

impl Trace {
    pub fn new(enabled: bool) -> Self {
        Trace {
            spans: Vec::new(),
            flows: Vec::new(),
            counters: Vec::new(),
            instants: Vec::new(),
            enabled,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a completed span (no-op when disabled).
    pub fn record(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start);
        self.spans.push(Span {
            track: track.into(),
            name: name.into(),
            start,
            end,
        });
    }

    /// Record the producing endpoint of a flow arrow (no-op when disabled).
    pub fn flow_start(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        id: u64,
        ts: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.flows.push(FlowEvent {
            track: track.into(),
            name: name.into(),
            id,
            ts,
            phase: FlowPhase::Start,
        });
    }

    /// Record the consuming endpoint of a flow arrow (no-op when disabled).
    pub fn flow_end(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        id: u64,
        ts: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.flows.push(FlowEvent {
            track: track.into(),
            name: name.into(),
            id,
            ts,
            phase: FlowPhase::Finish,
        });
    }

    /// Record a counter sample (no-op when disabled).
    pub fn counter(&mut self, name: impl Into<String>, ts: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        self.counters.push(CounterSample {
            name: name.into(),
            ts,
            value,
        });
    }

    /// Record an instant marker (no-op when disabled).
    pub fn instant(&mut self, track: impl Into<String>, name: impl Into<String>, ts: SimTime) {
        if !self.enabled {
            return;
        }
        self.instants.push(InstantEvent {
            track: track.into(),
            name: name.into(),
            ts,
        });
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.flows.is_empty()
            && self.counters.is_empty()
            && self.instants.is_empty()
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn flows(&self) -> &[FlowEvent] {
        &self.flows
    }

    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counters
    }

    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// Append every event of `other` into this trace (used to merge the
    /// per-component traces of a simulated cluster). Ignores `enabled` on
    /// either side: merging is an export-time operation.
    pub fn merge_from(&mut self, other: &Trace) {
        self.spans.extend(other.spans.iter().cloned());
        self.flows.extend(other.flows.iter().cloned());
        self.counters.extend(other.counters.iter().cloned());
        self.instants.extend(other.instants.iter().cloned());
    }

    /// Serialize as Chrome trace-event JSON. Spans become complete "X"
    /// events; flow endpoints `"s"`/`"f"` pairs; counter samples `"C"`
    /// events; instants `"i"` events. One thread id per distinct track,
    /// assigned in *sorted track-name order* so the output is independent
    /// of recording order.
    pub fn to_chrome_json(&self) -> String {
        // Deterministic tid assignment: sorted distinct track names.
        let mut tracks: Vec<&str> = self
            .spans
            .iter()
            .map(|s| s.track.as_str())
            .chain(self.flows.iter().map(|f| f.track.as_str()))
            .chain(self.instants.iter().map(|i| i.track.as_str()))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        let tid_of = |track: &str| tracks.binary_search(&track).expect("track registered");

        let mut out = String::from(r#"{"traceEvents":["#);
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };
        for s in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{:.3},"dur":{:.3}}}"#,
                json_escape(&s.name),
                tid_of(&s.track),
                s.start.as_us_f64(),
                (s.end - s.start).as_us_f64()
            );
        }
        for f in &self.flows {
            sep(&mut out);
            let (ph, bp) = match f.phase {
                FlowPhase::Start => ("s", ""),
                // bp:"e" binds the finish to the enclosing slice rather
                // than requiring an exact "t" step match.
                FlowPhase::Finish => ("f", r#","bp":"e""#),
            };
            let _ = write!(
                out,
                r#"{{"name":"{}","cat":"flow","ph":"{}"{},"id":{},"pid":1,"tid":{},"ts":{:.3}}}"#,
                json_escape(&f.name),
                ph,
                bp,
                f.id,
                tid_of(&f.track),
                f.ts.as_us_f64()
            );
        }
        for c in &self.counters {
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"C","pid":1,"ts":{:.3},"args":{{"value":{}}}}}"#,
                json_escape(&c.name),
                c.ts.as_us_f64(),
                c.value
            );
        }
        for i in &self.instants {
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"i","s":"t","pid":1,"tid":{},"ts":{:.3}}}"#,
                json_escape(&i.name),
                tid_of(&i.track),
                i.ts.as_us_f64()
            );
        }
        // Thread-name metadata so viewers label the tracks.
        for (tid, track) in tracks.iter().enumerate() {
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
                tid,
                json_escape(track)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.record("w0", "task", SimTime::ZERO, SimTime::from_us(1));
        t.flow_start("w0", "f", 1, SimTime::ZERO);
        t.flow_end("w0", "f", 1, SimTime::ZERO);
        t.counter("q", SimTime::ZERO, 1.0);
        t.instant("w0", "i", SimTime::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new(true);
        t.record("n0.w0", "gemm", SimTime::from_us(1), SimTime::from_us(3));
        t.record(
            "n0.comm",
            "activate",
            SimTime::from_us(2),
            SimTime::from_us(4),
        );
        t.record("n0.w0", "trsm", SimTime::from_us(5), SimTime::from_us(6));
        let json = t.to_chrome_json();
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""name":"gemm""#));
        assert!(json.contains(r#""dur":2.000"#));
        assert!(json.contains("thread_name"));
        // Two distinct tracks → tids 0 and 1.
        assert!(json.contains(r#""tid":1"#));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_trace_is_valid_json_shell() {
        let t = Trace::new(true);
        assert_eq!(t.to_chrome_json(), r#"{"traceEvents":[]}"#);
    }

    #[test]
    fn json_escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("a\nb\tc"), r"a\nb\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn span_names_are_escaped_not_stripped() {
        let mut t = Trace::new(true);
        t.record(
            r"n0.w0",
            r#"put "x" \ y"#,
            SimTime::ZERO,
            SimTime::from_us(1),
        );
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"put \"x\" \\ y""#), "{json}");
    }

    #[test]
    fn tids_are_sorted_by_track_name() {
        // Record in reverse-alphabetical order; tids still follow sorted
        // track names, independent of recording order.
        let mut t = Trace::new(true);
        t.record("n1.w0", "b", SimTime::ZERO, SimTime::from_us(1));
        t.record("n0.w0", "a", SimTime::ZERO, SimTime::from_us(1));
        let json = t.to_chrome_json();
        assert!(
            json.contains(r#""name":"a","ph":"X","pid":1,"tid":0"#),
            "{json}"
        );
        assert!(
            json.contains(r#""name":"b","ph":"X","pid":1,"tid":1"#),
            "{json}"
        );
    }

    #[test]
    fn flow_counter_instant_events_emitted() {
        let mut t = Trace::new(true);
        t.record("n0.comm", "send", SimTime::from_us(1), SimTime::from_us(2));
        t.record("n1.comm", "recv", SimTime::from_us(4), SimTime::from_us(5));
        t.flow_start("n0.comm", "am", 42, SimTime::from_us(1));
        t.flow_end("n1.comm", "am", 42, SimTime::from_us(4));
        t.counter("n0.cmdq", SimTime::from_us(1), 3.0);
        t.instant("n0.comm", "retry", SimTime::from_us(2));
        let json = t.to_chrome_json();
        assert!(json.contains(r#""ph":"s""#));
        assert!(json.contains(r#""ph":"f","bp":"e""#));
        assert!(json.contains(r#""id":42"#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""args":{"value":3}"#));
        assert!(json.contains(r#""ph":"i""#));
    }

    #[test]
    fn merge_from_combines_all_event_kinds() {
        let mut a = Trace::new(true);
        a.record("n0.w0", "x", SimTime::ZERO, SimTime::from_us(1));
        let mut b = Trace::new(true);
        b.flow_start("n1.comm", "f", 7, SimTime::ZERO);
        b.counter("n1.q", SimTime::ZERO, 1.0);
        b.instant("n1.comm", "i", SimTime::ZERO);
        a.merge_from(&b);
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.flows().len(), 1);
        assert_eq!(a.counter_samples().len(), 1);
        assert_eq!(a.instants().len(), 1);
    }
}
