//! The event loop: a virtual clock plus a deterministic priority queue of
//! events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event body: arbitrary code run at a virtual instant.
pub type Event = Box<dyn FnOnce(&mut Sim)>;

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    body: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulation engine.
///
/// `Sim` owns the virtual clock and the pending-event queue. All simulation
/// activity happens inside events: an event may inspect/mutate components it
/// has captured and schedule further events.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    executed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (engine-throughput metric).
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `body` to run at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs "immediately",
    /// preserving determinism).
    pub fn schedule_at(&mut self, at: SimTime, body: impl FnOnce(&mut Sim) + 'static) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time: at,
            seq,
            body: Box::new(body),
        }));
    }

    /// Schedule `body` to run `delay` after the current virtual time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, body: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, body);
    }

    /// Schedule `body` to run at the current virtual instant, after all
    /// events already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, body: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, body);
    }

    /// Execute a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                debug_assert!(ev.time >= self.now, "event queue went backwards");
                self.now = ev.time;
                self.executed += 1;
                (ev.body)(self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or virtual time would exceed `deadline`.
    ///
    /// Events scheduled exactly at `deadline` still execute. Returns `true`
    /// if the queue drained, `false` if the deadline stopped the run (the
    /// first too-late event remains queued and the clock does not advance
    /// past `deadline`).
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(ev)) if ev.time > deadline => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run at most `max_events` events. Returns the number executed.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared;

    #[test]
    fn empty_sim_is_idle() {
        let mut sim = Sim::new();
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for &t in &[5u64, 1, 3, 2, 4] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_us(5));
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for i in 0..10 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(7), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let l2 = log.clone();
        sim.schedule_in(SimTime::from_us(1), move |sim| {
            l2.borrow_mut().push(sim.now());
            let l3 = l2.clone();
            sim.schedule_in(SimTime::from_us(2), move |sim| {
                l3.borrow_mut().push(sim.now());
            });
        });
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![SimTime::from_us(1), SimTime::from_us(3)]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let hits = shared(0u32);
        for t in 1..=10u64 {
            let hits = hits.clone();
            sim.schedule_at(SimTime::from_us(t), move |_| *hits.borrow_mut() += 1);
        }
        let drained = sim.run_until(SimTime::from_us(4));
        assert!(!drained);
        assert_eq!(*hits.borrow(), 4);
        assert_eq!(sim.now(), SimTime::from_us(4));
        assert!(sim.run_until(SimTime::from_us(100)));
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    fn schedule_now_runs_after_same_instant_events() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let (a, b) = (log.clone(), log.clone());
        sim.schedule_at(SimTime::ZERO, move |sim| {
            let b = b.clone();
            sim.schedule_now(move |_| b.borrow_mut().push("later"));
        });
        sim.schedule_at(SimTime::ZERO, move |_| a.borrow_mut().push("first"));
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "later"]);
    }

    #[test]
    fn run_events_bounds_execution() {
        let mut sim = Sim::new();
        for t in 0..5u64 {
            sim.schedule_at(SimTime::from_ns(t), |_| {});
        }
        assert_eq!(sim.run_events(3), 3);
        assert_eq!(sim.events_pending(), 2);
        assert_eq!(sim.run_events(100), 2);
    }
}
