//! The event loop: a virtual clock plus a deterministic two-level
//! ladder/calendar queue of events.
//!
//! ## Queue structure
//!
//! The seed engine kept every pending event in one `BinaryHeap`, paying a
//! `Box<dyn FnOnce>` allocation and an O(log n) sift per event. This engine
//! splits the pending set three ways, ordered by how hot each path is:
//!
//! * **now queue** — events scheduled for the *current* instant
//!   (`schedule_now`, or `schedule_at(now)`). They bypass the time index
//!   entirely: a plain FIFO push, popped in insertion (= seq) order.
//! * **solo slot** — the single-outstanding-timer fast path. When a
//!   non-cancelable timed event arrives and nothing else timed is pending
//!   (the dominant pattern: progress polls, serialized NIC sends), it
//!   parks closure-and-all in one field; schedule + pop touch no other
//!   structure. A second timed event demotes it into the ladder.
//! * **ladder ring** — a ring of [`NUM_BUCKETS`] buckets, each covering
//!   `2^BUCKET_BITS` ns of virtual time. An event at time `t` lands in
//!   bucket `t >> BUCKET_BITS`; insertion is an O(1) push. A bucket is
//!   sorted lazily — only when the cursor reaches it — and drained in
//!   place through `cur_pos`. An occupancy bitmap (one bit per bucket)
//!   hops the cursor over empty-bucket runs, so sparse timelines don't
//!   pay a per-bucket scan.
//! * **far heap** — events beyond the ring window wait in a small
//!   `BinaryHeap` and migrate into the ring as the window advances.
//!
//! Event bodies live in a **slab** with a free list: a queue node is a
//! 24-byte `Entry` (time, seq, slot), and the closure itself is an
//! [`EventFn`] stored inline in the slot when its captures fit three words.
//! In steady state neither scheduling nor executing an event touches the
//! allocator.
//!
//! ## Determinism
//!
//! Execution order is *exactly* the `(time, seq)` total order of the seed
//! engine — `seq` is a monotonic counter assigned at `schedule_*` time:
//!
//! * Across buckets, lower `t` drains first; within a bucket the lazy sort
//!   orders by `(time, seq)`.
//! * Every now-queue event was scheduled *while* `now` held its time, so
//!   its seq is strictly greater than any same-time entry still sitting in
//!   the ladder (those were scheduled before the clock reached that time).
//!   Hence: drain ladder entries at `now` first, then the now queue, then
//!   advance the clock — which is exactly ascending `(time, seq)`.
//!
//! Cancellation ([`Sim::cancel`]) frees the slot immediately and leaves a
//! *stale* queue entry behind; stale entries are recognised (slot seq
//! mismatch, or slot empty) and skipped during the drain. Sequence numbers
//! are never reused, so a recycled slot can never be confused with the
//! event that previously occupied it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::event::EventFn;
use crate::time::SimTime;

/// log2 of the ladder bucket width in nanoseconds (4.096 µs buckets).
const BUCKET_BITS: u32 = 12;
/// Number of ladder buckets (a power of two). The near window covers
/// `NUM_BUCKETS << BUCKET_BITS` ns ≈ 4.2 ms of virtual time; events beyond
/// it wait in the far heap. Sized so the ring's resident footprint stays
/// small: the far heap holds only *live* far-future events (a handful —
/// long task completions), while every ring bucket retains capacity and
/// collects cancellation tombstones until the cursor passes it.
const NUM_BUCKETS: usize = 1024;
/// Words in the bucket-occupancy bitmap (one bit per ring slot).
const OCC_WORDS: usize = NUM_BUCKETS / 64;
/// Bucket length at which stale-entry compaction kicks in, and the
/// capacity a drained bucket is allowed to keep. Bounds ladder memory at
/// roughly `NUM_BUCKETS * COMPACT_MIN` entries plus the live population.
const COMPACT_MIN: usize = 8;

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.as_ns() >> BUCKET_BITS
}

#[inline]
fn ring_idx(bucket: u64) -> usize {
    (bucket as usize) & (NUM_BUCKETS - 1)
}

/// A queue node: the slab slot holding the closure plus the `(time, seq)`
/// pair that fixes its place in the total order.
#[derive(Clone, Copy, Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

/// Far-heap wrapper ordered by `(time, seq)`; the slot does not participate
/// (`(time, seq)` is already unique).
struct FarEntry(Entry);

impl PartialEq for FarEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time, self.0.seq) == (other.0.time, other.0.seq)
    }
}
impl Eq for FarEntry {}
impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

/// One slab cell. `seq` identifies the occupying event; queue entries whose
/// seq disagrees (or that find the cell empty) are stale.
struct Slot {
    seq: u64,
    f: Option<EventFn>,
}

/// Handle to a pending event, returned by [`Sim::schedule_at_cancelable`].
#[derive(Clone, Copy, Debug)]
pub struct EventToken {
    slot: u32,
    seq: u64,
}

/// The parked single outstanding timer (see [`Sim::solo`]): not cancelable,
/// so it carries its closure directly instead of a slab slot.
struct SoloEvent {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

/// A now-queue element. FIFO position fixes the order, so non-cancelable
/// events carry their closure inline; only cancelable ones need a slab
/// slot (for the liveness check).
enum NowItem {
    Direct(EventFn),
    Slab(Entry),
}

/// The simulation engine.
///
/// `Sim` owns the virtual clock and the pending-event queue. All simulation
/// activity happens inside events: an event may inspect/mutate components it
/// has captured and schedule further events.
pub struct Sim {
    now: SimTime,
    seq: u64,
    /// Same-instant fast path (see module docs).
    now_q: VecDeque<NowItem>,
    /// Ladder buckets; bucket `b` lives at `ring[b % NUM_BUCKETS]`.
    ring: Vec<Vec<Entry>>,
    /// Absolute bucket id the ring window starts at (the cursor).
    cur_bucket: u64,
    /// Whether the current bucket has been sorted for draining.
    cur_sorted: bool,
    /// Next unconsumed index into the sorted current bucket.
    cur_pos: usize,
    /// Entries in `ring`, stale included, minus the consumed prefix of the
    /// current bucket.
    ring_len: usize,
    /// One bit per ring slot: set iff the bucket's `Vec` is non-empty. Lets
    /// the cursor hop over runs of empty buckets in O(1) instead of
    /// visiting each one (the classic calendar-queue sparse-timeline tax).
    occ: [u64; OCC_WORDS],
    /// Fast path for the ubiquitous single-outstanding-timer pattern
    /// (progress polls, serialized NIC sends): while no *other* timed event
    /// is pending, a non-cancelable event parks here — closure included —
    /// and touches neither the ladder nor the slab. Any later timed insert
    /// demotes it into the ring first, so `solo.is_some()` implies the ring
    /// and far heap are empty.
    solo: Option<SoloEvent>,
    far: BinaryHeap<Reverse<FarEntry>>,
    slab: Vec<Slot>,
    free: Vec<u32>,
    /// Live (scheduled, not cancelled, not executed) events.
    pending: usize,
    /// High-water mark of `pending` — the event-storage footprint driver.
    peak_pending: usize,
    executed: u64,
    clamped: u64,
    inline_events: u64,
    boxed_events: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            now_q: VecDeque::new(),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cur_bucket: 0,
            cur_sorted: false,
            cur_pos: 0,
            ring_len: 0,
            occ: [0; OCC_WORDS],
            solo: None,
            far: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            pending: 0,
            peak_pending: 0,
            executed: 0,
            clamped: 0,
            inline_events: 0,
            boxed_events: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (engine-throughput metric).
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (cancelled events excluded).
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.pending
    }

    /// High-water mark of [`events_pending`](Self::events_pending) — the
    /// peak simultaneously materialized event population, which bounds the
    /// engine's retained queue/slab memory.
    #[inline]
    pub fn events_peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Times a release build clamped a past-time `schedule_at` to `now`.
    ///
    /// Past scheduling is a model bug: debug builds panic, release builds
    /// clamp to keep running deterministically — but count here so the slip
    /// is visible in `metrics_report` instead of silent.
    #[inline]
    pub fn schedule_past_clamped(&self) -> u64 {
        self.clamped
    }

    /// Events whose captures fit the [`EventFn`] inline buffer (no
    /// allocation).
    #[inline]
    pub fn events_inline(&self) -> u64 {
        self.inline_events
    }

    /// Events whose captures were too large to inline and were boxed.
    #[inline]
    pub fn events_boxed(&self) -> u64 {
        self.boxed_events
    }

    // ----- scheduling -----

    /// Schedule `body` to run at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event is clamped to `now` (runs "immediately",
    /// preserving determinism) and counted in
    /// [`schedule_past_clamped`](Self::schedule_past_clamped).
    #[inline]
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, body: F) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        if EventFn::fits_inline::<F>() {
            self.inline_events += 1;
        } else {
            self.boxed_events += 1;
        }
        if at == self.now {
            // Not cancelable: the closure rides the FIFO directly.
            self.seq += 1;
            self.pending += 1;
            self.peak_pending = self.peak_pending.max(self.pending);
            self.now_q.push_back(NowItem::Direct(EventFn::new(body)));
            return;
        }
        if let Some(s) = self.solo.take() {
            self.demote_solo(s);
        }
        if self.ring_len == 0 && self.far.is_empty() {
            // Not cancelable, so the closure parks directly in `solo` —
            // no slab slot, no liveness checks.
            let seq = self.seq;
            self.seq += 1;
            self.pending += 1;
            self.peak_pending = self.peak_pending.max(self.pending);
            self.solo = Some(SoloEvent {
                time: at,
                seq,
                f: EventFn::new(body),
            });
            return;
        }
        self.push_at(at, EventFn::new(body));
    }

    /// Like [`schedule_at`](Self::schedule_at), returning a token that can
    /// later [`cancel`](Self::cancel) the event.
    pub fn schedule_at_cancelable<F: FnOnce(&mut Sim) + 'static>(
        &mut self,
        at: SimTime,
        body: F,
    ) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        if EventFn::fits_inline::<F>() {
            self.inline_events += 1;
        } else {
            self.boxed_events += 1;
        }
        self.push_at(at, EventFn::new(body))
    }

    /// Schedule `body` to run `delay` after the current virtual time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, body: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, body);
    }

    /// Schedule `body` to run at the current virtual instant, after all
    /// events already scheduled for this instant. Bypasses the time index.
    #[inline]
    pub fn schedule_now(&mut self, body: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, body);
    }

    /// Schedule an already-wrapped [`EventFn`] at the current instant.
    ///
    /// Lets components that queue event bodies (e.g. waiter lists) hand
    /// them back without re-wrapping.
    pub fn schedule_now_fn(&mut self, f: EventFn) {
        self.seq += 1;
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
        self.now_q.push_back(NowItem::Direct(f));
    }

    /// Cancel a pending event. Returns `true` if the event was still
    /// pending (it will not run); `false` if it already ran or was already
    /// cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        match self.slab.get_mut(token.slot as usize) {
            Some(s) if s.seq == token.seq && s.f.is_some() => {
                s.f = None;
                self.free.push(token.slot);
                self.pending -= 1;
                true
            }
            _ => false,
        }
    }

    fn push_at(&mut self, at: SimTime, f: EventFn) -> EventToken {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc(seq, f);
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
        let e = Entry {
            time: at,
            seq,
            slot,
        };
        if at == self.now {
            self.now_q.push_back(NowItem::Slab(e));
        } else {
            // The parked timer, if any, carries a smaller seq and must be
            // orderable against this entry: fold it into the ladder first.
            if let Some(s) = self.solo.take() {
                self.demote_solo(s);
            }
            self.insert_timed(e);
        }
        EventToken { slot, seq }
    }

    /// Move the parked solo event into the ladder (its `pending` count was
    /// taken at schedule time, so only the slab slot is new).
    fn demote_solo(&mut self, s: SoloEvent) {
        let slot = self.alloc(s.seq, s.f);
        self.insert_timed(Entry {
            time: s.time,
            seq: s.seq,
            slot,
        });
    }

    fn alloc(&mut self, seq: u64, f: EventFn) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let s = &mut self.slab[i as usize];
                s.seq = seq;
                s.f = Some(f);
                i
            }
            None => {
                self.slab.push(Slot { seq, f: Some(f) });
                (self.slab.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn is_live(&self, e: &Entry) -> bool {
        let s = &self.slab[e.slot as usize];
        s.seq == e.seq && s.f.is_some()
    }

    /// Take the closure out of a live entry's slot and recycle the slot.
    fn consume(&mut self, e: Entry) -> EventFn {
        let s = &mut self.slab[e.slot as usize];
        debug_assert_eq!(s.seq, e.seq);
        let f = s.f.take().expect("consuming a stale entry");
        self.free.push(e.slot);
        self.pending -= 1;
        f
    }

    fn insert_timed(&mut self, e: Entry) {
        let b = bucket_of(e.time);
        if b < self.cur_bucket {
            // The cursor overtook this bucket — possible only after
            // `run_until` scanned ahead of its deadline. Fold the ring back
            // so the window starts at `b` again.
            self.rebase(b);
        }
        if b >= self.cur_bucket + NUM_BUCKETS as u64 {
            self.far.push(Reverse(FarEntry(e)));
            return;
        }
        let idx = ring_idx(b);
        let v = &mut self.ring[idx];
        if b == self.cur_bucket && self.cur_sorted && v.last().is_some_and(|l| l.time > e.time) {
            // Keep the unconsumed tail of the current bucket sorted. The
            // new seq is the largest, so position on time alone. (Monotone
            // inserts — the common case — take the `push` below instead.)
            let pos = self.cur_pos + v[self.cur_pos..].partition_point(|x| x.time <= e.time);
            v.insert(pos, e);
        } else {
            v.push(e);
        }
        let full = v.len() == v.capacity() && v.len() >= COMPACT_MIN;
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
        self.ring_len += 1;
        // Cancel-heavy components (deferred GETs, retry timers) leave
        // stale tombstones behind; sweep a bucket when it fills so debris
        // can't inflate its capacity. Never the current bucket: its
        // consumed prefix must stay in place for `cur_pos`.
        if full && b != self.cur_bucket {
            self.compact_bucket(idx);
        }
    }

    /// Drop stale (cancelled) entries from bucket `idx` and return the
    /// capacity to a sane level if mostly debris. Order is irrelevant —
    /// the bucket is sorted lazily at drain time.
    fn compact_bucket(&mut self, idx: usize) {
        let slab = &self.slab;
        let v = &mut self.ring[idx];
        let before = v.len();
        v.retain(|e| {
            let s = &slab[e.slot as usize];
            s.seq == e.seq && s.f.is_some()
        });
        self.ring_len -= before - v.len();
        if v.len() * 4 <= v.capacity() {
            v.shrink_to(v.len().max(COMPACT_MIN));
        }
    }

    /// Reset a drained bucket, clamping capacity a burst left behind.
    /// Small capacities are kept so steadily cycling buckets don't pay a
    /// realloc per ring pass.
    fn clear_bucket(&mut self, idx: usize) {
        let v = &mut self.ring[idx];
        v.clear();
        if v.capacity() > 4 * COMPACT_MIN {
            v.shrink_to(COMPACT_MIN);
        }
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Move the window start back to `new_bucket`, re-filing every
    /// unconsumed ring entry (and dropping stale ones).
    fn rebase(&mut self, new_bucket: u64) {
        debug_assert!(new_bucket >= bucket_of(self.now));
        let mut saved: Vec<Entry> = Vec::with_capacity(self.ring_len);
        let cur_idx = ring_idx(self.cur_bucket);
        for (i, v) in self.ring.iter_mut().enumerate() {
            let consumed = if i == cur_idx { self.cur_pos } else { 0 };
            saved.extend(v.drain(..).skip(consumed));
        }
        self.cur_bucket = new_bucket;
        self.cur_sorted = false;
        self.cur_pos = 0;
        self.ring_len = 0;
        self.occ = [0; OCC_WORDS];
        for e in saved {
            if self.is_live(&e) {
                self.insert_timed(e);
            }
        }
    }

    /// Pull far-heap entries that now fall inside the ring window.
    fn migrate_far(&mut self) {
        debug_assert!(!self.cur_sorted);
        let end = self.cur_bucket + NUM_BUCKETS as u64;
        while let Some(Reverse(fe)) = self.far.peek() {
            let b = bucket_of(fe.0.time);
            if b >= end {
                break;
            }
            debug_assert!(b >= self.cur_bucket);
            let Reverse(FarEntry(e)) = self.far.pop().expect("peeked above");
            let idx = ring_idx(b);
            self.ring[idx].push(e);
            self.occ[idx >> 6] |= 1u64 << (idx & 63);
            self.ring_len += 1;
        }
    }

    /// Distance (in buckets, ≥ 1) from `cur_bucket` to the next non-empty
    /// ring slot, scanning the occupancy bitmap circularly. `None` when no
    /// other bucket holds entries. The current bucket's own bit must be
    /// cleared before calling.
    fn occ_next_delta(&self) -> Option<u64> {
        let start = ring_idx(self.cur_bucket);
        let w0 = start >> 6;
        let b0 = (start & 63) as u32;
        // Bits strictly after `start` within its word.
        if b0 < 63 {
            let w = self.occ[w0] & (!0u64 << (b0 + 1));
            if w != 0 {
                return Some((w.trailing_zeros() - b0) as u64);
            }
        }
        for k in 1..=OCC_WORDS {
            let wi = (w0 + k) & (OCC_WORDS - 1);
            let w = self.occ[wi];
            if w != 0 {
                let idx = (wi << 6) + w.trailing_zeros() as usize;
                let delta = (idx + NUM_BUCKETS - start) & (NUM_BUCKETS - 1);
                debug_assert!(delta > 0, "start bit should have been cleared");
                return Some(delta as u64);
            }
        }
        None
    }

    /// First live entry of the current bucket (sorting lazily, purging
    /// stale entries), without advancing past the bucket. Afterwards the
    /// entry, if any, sits at `ring[cur][cur_pos]`.
    fn current_bucket_live(&mut self) -> Option<Entry> {
        let idx = ring_idx(self.cur_bucket);
        if !self.cur_sorted {
            debug_assert_eq!(self.cur_pos, 0);
            self.ring[idx].sort_unstable_by_key(|e| (e.time, e.seq));
            self.cur_sorted = true;
        }
        let mut pos = self.cur_pos;
        let found = loop {
            match self.ring[idx].get(pos) {
                None => break None,
                Some(&e) => {
                    if self.is_live(&e) {
                        break Some(e);
                    }
                    pos += 1;
                }
            }
        };
        self.ring_len -= pos - self.cur_pos;
        self.cur_pos = pos;
        found
    }

    /// Next live timed (non-now-queue, non-solo) entry, advancing the
    /// window as needed. The bitmap hops the cursor straight to the next
    /// non-empty bucket; when the ring is empty it jumps to the earliest
    /// far bucket.
    fn timed_candidate(&mut self) -> Option<Entry> {
        loop {
            if let Some(e) = self.current_bucket_live() {
                return Some(e);
            }
            let idx = ring_idx(self.cur_bucket);
            self.clear_bucket(idx);
            self.cur_pos = 0;
            self.cur_sorted = false;
            if let Some(d) = self.occ_next_delta() {
                // Next occupied ring bucket: always at or before the far
                // heap's minimum (far entries sit beyond the window end).
                self.cur_bucket += d;
            } else if let Some(Reverse(fe)) = self.far.peek() {
                self.cur_bucket = bucket_of(fe.0.time);
            } else {
                return None;
            }
            self.migrate_far();
        }
    }

    /// Remove and return the entry `current_bucket_live` halted on.
    fn take_current(&mut self, e: Entry) -> EventFn {
        self.cur_pos += 1;
        self.ring_len -= 1;
        self.consume(e)
    }

    /// Pop the solo event, folding the cursor forward so the window starts
    /// at the new `now`.
    fn take_solo(&mut self, s: SoloEvent) -> EventFn {
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.pending -= 1;
        let b = bucket_of(s.time);
        if b > self.cur_bucket {
            // Only the current bucket can hold residue (its consumed
            // prefix): the ring is otherwise empty while `solo` is set.
            let idx = ring_idx(self.cur_bucket);
            self.clear_bucket(idx);
            self.cur_pos = 0;
            self.cur_sorted = false;
            self.cur_bucket = b;
        }
        s.f
    }

    /// Drop stale (cancelled) slab-backed items from the now-queue front.
    fn purge_now_front(&mut self) {
        while let Some(NowItem::Slab(e)) = self.now_q.front() {
            if self.is_live(e) {
                break;
            }
            self.now_q.pop_front();
        }
    }

    /// Pop the next live event in `(time, seq)` order, advancing `now`.
    fn pop_next(&mut self) -> Option<EventFn> {
        self.purge_now_front();
        if self.now_q.is_empty() {
            if let Some(s) = self.solo.take() {
                return Some(self.take_solo(s));
            }
            let e = self.timed_candidate()?;
            debug_assert!(e.time >= self.now, "event queue went backwards");
            self.now = e.time;
            return Some(self.take_current(e));
        }
        // A live now-queue event exists. Same-instant entries still in the
        // current bucket carry smaller seqs and must run first. (`solo`
        // never competes: its time is strictly in the future.)
        if self.cur_bucket == bucket_of(self.now) {
            if let Some(e) = self.current_bucket_live() {
                if e.time == self.now {
                    return Some(self.take_current(e));
                }
            }
        }
        match self.now_q.pop_front().expect("checked non-empty") {
            NowItem::Direct(f) => {
                self.pending -= 1;
                Some(f)
            }
            NowItem::Slab(e) => Some(self.consume(e)),
        }
    }

    /// Virtual time of the next live event, without executing anything.
    /// (Lazily discards cancelled entries encountered along the way.)
    fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_now_front();
        if !self.now_q.is_empty() {
            return Some(self.now);
        }
        if let Some(s) = &self.solo {
            return Some(s.time);
        }
        self.timed_candidate().map(|e| e.time)
    }

    // ----- execution -----

    /// Execute a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        match self.pop_next() {
            Some(f) => {
                self.executed += 1;
                f.invoke(self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or virtual time would exceed `deadline`.
    ///
    /// Events scheduled exactly at `deadline` still execute. Returns `true`
    /// if the queue drained, `false` if the deadline stopped the run (the
    /// first too-late event remains queued and the clock does not advance
    /// past `deadline`).
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.peek_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run every event with time strictly below `horizon` (the
    /// conservative-lookahead window of the island-parallel engine; see
    /// `run_until` for the inclusive variant). Returns `true` if the queue
    /// drained, `false` if an event at or past `horizon` remains queued.
    pub fn run_before(&mut self, horizon: SimTime) -> bool {
        loop {
            match self.peek_time() {
                None => return true,
                Some(t) if t >= horizon => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Virtual time of the next pending event, if any, without executing
    /// anything (the island coordinator's window-base probe).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.peek_time()
    }

    /// Run at most `max_events` events. Returns the number executed.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared;

    #[test]
    fn empty_sim_is_idle() {
        let mut sim = Sim::new();
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for &t in &[5u64, 1, 3, 2, 4] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_us(5));
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for i in 0..10 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(7), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let l2 = log.clone();
        sim.schedule_in(SimTime::from_us(1), move |sim| {
            l2.borrow_mut().push(sim.now());
            sim.schedule_in(SimTime::from_us(2), move |sim| {
                l2.borrow_mut().push(sim.now());
            });
        });
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![SimTime::from_us(1), SimTime::from_us(3)]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let hits = shared(0u32);
        for t in 1..=10u64 {
            let hits = hits.clone();
            sim.schedule_at(SimTime::from_us(t), move |_| *hits.borrow_mut() += 1);
        }
        let drained = sim.run_until(SimTime::from_us(4));
        assert!(!drained);
        assert_eq!(*hits.borrow(), 4);
        assert_eq!(sim.now(), SimTime::from_us(4));
        assert!(sim.run_until(SimTime::from_us(100)));
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    fn schedule_now_runs_after_same_instant_events() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let (a, b) = (log.clone(), log.clone());
        sim.schedule_at(SimTime::ZERO, move |sim| {
            let b = b.clone();
            sim.schedule_now(move |_| b.borrow_mut().push("later"));
        });
        sim.schedule_at(SimTime::ZERO, move |_| a.borrow_mut().push("first"));
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "later"]);
    }

    #[test]
    fn run_events_bounds_execution() {
        let mut sim = Sim::new();
        for t in 0..5u64 {
            sim.schedule_at(SimTime::from_ns(t), |_| {});
        }
        assert_eq!(sim.run_events(3), 3);
        assert_eq!(sim.events_pending(), 2);
        assert_eq!(sim.run_events(100), 2);
    }

    // ----- ladder-specific coverage -----

    /// Window is ~4.2 ms: events many milliseconds out exercise the far
    /// heap and its migration back into the ring.
    #[test]
    fn far_horizon_events_run_in_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for &ms in &[40u64, 2, 25, 9, 16, 33, 1] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ms(ms), move |_| log.borrow_mut().push(ms));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 9, 16, 25, 33, 40]);
        assert_eq!(sim.now(), SimTime::from_ms(40));
    }

    /// Mixed near/far chains: each far event schedules near follow-ups,
    /// interleaving ladder inserts with far migrations.
    #[test]
    fn near_far_interleaving_is_ordered() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        for ms in [10u64, 20, 30] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ms(ms), move |sim| {
                log.borrow_mut().push(sim.now());
                sim.schedule_in(SimTime::from_ns(100), move |sim| {
                    log.borrow_mut().push(sim.now());
                });
            });
        }
        sim.run();
        let want: Vec<SimTime> = [10u64, 20, 30]
            .iter()
            .flat_map(|&ms| {
                [
                    SimTime::from_ms(ms),
                    SimTime::from_ms(ms) + SimTime::from_ns(100),
                ]
            })
            .collect();
        assert_eq!(*log.borrow(), want);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let (a, b, c) = (log.clone(), log.clone(), log.clone());
        sim.schedule_at(SimTime::from_us(1), move |_| a.borrow_mut().push(1));
        let tok = sim.schedule_at_cancelable(SimTime::from_us(2), move |_| b.borrow_mut().push(2));
        sim.schedule_at(SimTime::from_us(3), move |_| c.borrow_mut().push(3));
        assert_eq!(sim.events_pending(), 3);
        assert!(sim.cancel(tok));
        assert_eq!(sim.events_pending(), 2);
        assert!(!sim.cancel(tok), "double cancel must be a no-op");
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 3]);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn cancel_after_execution_is_a_noop() {
        let mut sim = Sim::new();
        let tok = sim.schedule_at_cancelable(SimTime::from_us(1), |_| {});
        sim.run();
        assert!(!sim.cancel(tok));
    }

    /// A freed slot gets recycled by the next event; the old token must not
    /// be able to cancel the new occupant.
    #[test]
    fn stale_token_cannot_cancel_recycled_slot() {
        let mut sim = Sim::new();
        let log = shared(0u32);
        let old = sim.schedule_at_cancelable(SimTime::from_us(1), |_| {});
        assert!(sim.cancel(old));
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(2), move |_| *l.borrow_mut() += 1);
        assert!(!sim.cancel(old), "stale token hit the recycled slot");
        sim.run();
        assert_eq!(*log.borrow(), 1);
    }

    /// Cancelled events beyond the deadline must not stop `run_until`.
    #[test]
    fn run_until_skips_cancelled_tail() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_us(1), |_| {});
        let tok = sim.schedule_at_cancelable(SimTime::from_us(10), |_| {});
        sim.cancel(tok);
        assert!(sim.run_until(SimTime::from_us(5)), "queue should drain");
        assert_eq!(sim.events_pending(), 0);
    }

    /// `run_until` may scan the cursor ahead of its deadline; a later
    /// insert behind the cursor must rebase the window, not lose order.
    #[test]
    fn schedule_behind_cursor_after_run_until() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let l = log.clone();
        sim.schedule_at(SimTime::from_ms(10), move |_| l.borrow_mut().push(10u64));
        // Peeks at the 10 ms event (jumping the cursor to its bucket), then
        // stops: nothing is due by 5 ms.
        assert!(!sim.run_until(SimTime::from_ms(5)));
        assert_eq!(sim.now(), SimTime::ZERO);
        let l = log.clone();
        sim.schedule_at(SimTime::from_ms(1), move |_| l.borrow_mut().push(1u64));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 10]);
    }

    #[test]
    fn inline_and_boxed_events_are_counted() {
        let mut sim = Sim::new();
        let log = shared(0u64);
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(1), move |_| *l.borrow_mut() += 1);
        let l = log.clone();
        let big = [1u64; 16];
        sim.schedule_at(SimTime::from_us(2), move |_| *l.borrow_mut() += big[0]);
        sim.run();
        assert_eq!(sim.events_inline(), 1);
        assert_eq!(sim.events_boxed(), 1);
        assert_eq!(*log.borrow(), 2);
    }

    /// Past scheduling panics in debug; in release it clamps and counts.
    #[cfg(not(debug_assertions))]
    #[test]
    fn past_scheduling_is_clamped_and_counted() {
        let mut sim = Sim::new();
        let log = shared(Vec::new());
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(5), move |sim| {
            let l2 = l.clone();
            // Into the past: runs "immediately" (at now), after events
            // already queued for this instant.
            sim.schedule_at(SimTime::from_us(1), move |sim| {
                l2.borrow_mut().push(sim.now());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![SimTime::from_us(5)]);
        assert_eq!(sim.schedule_past_clamped(), 1);
    }

    #[test]
    fn no_clamps_on_well_behaved_schedules() {
        let mut sim = Sim::new();
        sim.schedule_in(SimTime::from_us(1), |_| {});
        sim.run();
        assert_eq!(sim.schedule_past_clamped(), 0);
    }
}
