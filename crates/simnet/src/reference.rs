//! The seed `BinaryHeap` + `Box<dyn FnOnce>` engine, kept as a reference.
//!
//! [`RefSim`] is intentionally the pre-ladder implementation of the event
//! loop, verbatim. It serves two purposes:
//!
//! * **determinism oracle** — property tests drive [`crate::Sim`] and
//!   `RefSim` with identical `schedule_at`/`schedule_in`/`schedule_now`
//!   sequences and assert the execution orders match exactly;
//! * **performance baseline** — the engine micro-benchmarks report ladder
//!   throughput as a ratio over this engine, so the speedup claim is
//!   measured in-tree rather than against a historical number.
//!
//! Keep this file dumb and stable; it must not adopt engine optimisations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    body: Box<dyn FnOnce(&mut RefSim)>,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Reference discrete-event engine: one `BinaryHeap`, boxed event bodies.
pub struct RefSim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    executed: u64,
}

impl Default for RefSim {
    fn default() -> Self {
        Self::new()
    }
}

impl RefSim {
    pub fn new() -> Self {
        RefSim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    pub fn schedule_at(&mut self, at: SimTime, body: impl FnOnce(&mut RefSim) + 'static) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time: at,
            seq,
            body: Box::new(body),
        }));
    }

    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, body: impl FnOnce(&mut RefSim) + 'static) {
        self.schedule_at(self.now + delay, body);
    }

    #[inline]
    pub fn schedule_now(&mut self, body: impl FnOnce(&mut RefSim) + 'static) {
        self.schedule_at(self.now, body);
    }

    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                debug_assert!(ev.time >= self.now, "event queue went backwards");
                self.now = ev.time;
                self.executed += 1;
                (ev.body)(self);
                true
            }
            None => false,
        }
    }

    pub fn run(&mut self) {
        while self.step() {}
    }

    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(ev)) if ev.time > deadline => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared;

    #[test]
    fn reference_engine_orders_and_ties() {
        let mut sim = RefSim::new();
        let log = shared(Vec::new());
        for &(t, tag) in &[(5u64, 'a'), (1, 'b'), (5, 'c'), (1, 'd')] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(t), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['b', 'd', 'a', 'c']);
        assert_eq!(sim.events_executed(), 4);
        assert_eq!(sim.events_pending(), 0);
    }
}
