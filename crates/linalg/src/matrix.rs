//! Column-major dense matrix.

use bytes::Bytes;

/// A dense column-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    #[inline]
    pub fn add_assign_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] += v;
    }

    /// Column slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Copy the `rows × cols` submatrix at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self.get(r0 + i, c0 + j))
    }

    /// Write `m` into this matrix at `(r0, c0)`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, m: &Matrix) {
        assert!(r0 + m.rows <= self.rows && c0 + m.cols <= self.cols);
        for j in 0..m.cols {
            for i in 0..m.rows {
                self.set(r0 + i, c0 + j, m.get(i, j));
            }
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Serialize to little-endian `f64` bytes (runtime payloads).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for x in &self.data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Deserialize from [`Matrix::to_bytes`] output.
    pub fn from_bytes(rows: usize, cols: usize, b: &[u8]) -> Matrix {
        assert_eq!(b.len(), rows * cols * 8, "payload size mismatch");
        let data = b
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Entry-wise maximum absolute difference.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn bytes_roundtrip() {
        let m = Matrix::from_fn(4, 3, |i, j| (i as f64).sin() + j as f64);
        let b = m.to_bytes();
        assert_eq!(b.len(), 4 * 3 * 8);
        assert_eq!(Matrix::from_bytes(4, 3, &b), m);
    }

    #[test]
    fn submatrix_and_set() {
        let m = Matrix::from_fn(5, 5, |i, j| (i + 10 * j) as f64);
        let s = m.submatrix(1, 2, 2, 3);
        assert_eq!(s.get(0, 0), m.get(1, 2));
        assert_eq!(s.get(1, 2), m.get(2, 4));
        let mut z = Matrix::zeros(5, 5);
        z.set_submatrix(1, 2, &s);
        assert_eq!(z.get(2, 4), m.get(2, 4));
        assert_eq!(z.get(0, 0), 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn identity_norm() {
        let i = Matrix::identity(9);
        assert!((i.norm_fro() - 3.0).abs() < 1e-15);
    }
}
