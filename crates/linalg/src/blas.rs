//! BLAS-3 kernels used by the tile Cholesky: GEMM, SYRK, TRSM, POTRF.

use crate::matrix::Matrix;

/// Transpose selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    No,
    Yes,
}

/// `C ← α · op(A) · op(B) + β · C`.
pub fn gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    let (am, ak) = match ta {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    };
    let (bk, bn) = match tb {
        Trans::No => (b.rows(), b.cols()),
        Trans::Yes => (b.cols(), b.rows()),
    };
    assert_eq!(ak, bk, "gemm inner dimensions");
    assert_eq!(c.rows(), am, "gemm C rows");
    assert_eq!(c.cols(), bn, "gemm C cols");

    if beta != 1.0 {
        for j in 0..bn {
            for v in c.col_mut(j) {
                *v *= beta;
            }
        }
    }
    // jik with column access; specialize the common (No, No) case for a
    // cache-friendly saxpy inner loop.
    match (ta, tb) {
        (Trans::No, Trans::No) => {
            for j in 0..bn {
                for l in 0..ak {
                    let blj = alpha * b.get(l, j);
                    if blj == 0.0 {
                        continue;
                    }
                    let acol = a.col(l);
                    let ccol = c.col_mut(j);
                    for i in 0..am {
                        ccol[i] += blj * acol[i];
                    }
                }
            }
        }
        _ => {
            let at = |i: usize, l: usize| match ta {
                Trans::No => a.get(i, l),
                Trans::Yes => a.get(l, i),
            };
            let bt = |l: usize, j: usize| match tb {
                Trans::No => b.get(l, j),
                Trans::Yes => b.get(j, l),
            };
            for j in 0..bn {
                for i in 0..am {
                    let mut s = 0.0;
                    for l in 0..ak {
                        s += at(i, l) * bt(l, j);
                    }
                    c.add_assign_at(i, j, alpha * s);
                }
            }
        }
    }
}

/// `C ← α · A · Aᵀ + β · C`, updating the full (symmetric) `C`.
pub fn syrk_lower(alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), a.rows());
    let n = a.rows();
    let k = a.cols();
    if beta != 1.0 {
        for j in 0..n {
            for v in c.col_mut(j) {
                *v *= beta;
            }
        }
    }
    for j in 0..n {
        for l in 0..k {
            let ajl = alpha * a.get(j, l);
            if ajl == 0.0 {
                continue;
            }
            for i in j..n {
                let v = ajl * a.get(i, l);
                c.add_assign_at(i, j, v);
            }
        }
    }
    // Mirror to the upper triangle so downstream dense kernels can treat C
    // as a full matrix.
    for j in 0..n {
        for i in (j + 1)..n {
            let v = c.get(i, j);
            c.set(j, i, v);
        }
    }
}

/// Solve `L · X = B` in place (`B ← L⁻¹ B`), `L` lower-triangular.
pub fn trsm_left_lower(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.rows(), n);
    for j in 0..b.cols() {
        for i in 0..n {
            let mut s = b.get(i, j);
            for k in 0..i {
                s -= l.get(i, k) * b.get(k, j);
            }
            b.set(i, j, s / l.get(i, i));
        }
    }
}

/// Solve `X · Lᵀ = B` in place (`B ← B L⁻ᵀ`), `L` lower-triangular — the
/// Cholesky panel update.
pub fn trsm_right_lower_t(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.cols(), n);
    for i in 0..b.rows() {
        for j in 0..n {
            let mut s = b.get(i, j);
            for k in 0..j {
                s -= b.get(i, k) * l.get(j, k);
            }
            b.set(i, j, s / l.get(j, j));
        }
    }
}

/// Cholesky factorization `A = L·Lᵀ` (lower), in place on a copy.
/// Returns `Err(pivot)` if the matrix is not positive definite.
pub fn potrf(a: &Matrix) -> Result<Matrix, usize> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            d -= l.get(j, k) * l.get(j, k);
        }
        if d <= 0.0 {
            return Err(j);
        }
        let d = d.sqrt();
        l.set(j, j, d);
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / d);
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|l| a.get(i, l) * b.get(l, j)).sum()
        })
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 31 + j * 17) as f64 + seed).sin())
    }

    fn spd(n: usize) -> Matrix {
        let a = test_mat(n, n, 0.3);
        let mut c = Matrix::zeros(n, n);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut c);
        for i in 0..n {
            c.add_assign_at(i, i, n as f64);
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let a = test_mat(5, 7, 1.0);
        let b = test_mat(7, 4, 2.0);
        let mut c = Matrix::zeros(5, 4);
        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        assert!(c.max_diff(&naive_gemm(&a, &b)) < 1e-13);
    }

    #[test]
    fn gemm_transposes() {
        let a = test_mat(7, 5, 1.0);
        let b = test_mat(4, 7, 2.0);
        let mut c = Matrix::zeros(5, 4);
        gemm(1.0, &a, Trans::Yes, &b, Trans::Yes, 0.0, &mut c);
        let want = naive_gemm(&a.transpose(), &b.transpose());
        assert!(c.max_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = test_mat(3, 3, 1.0);
        let b = test_mat(3, 3, 2.0);
        let mut c = Matrix::identity(3);
        gemm(2.0, &a, Trans::No, &b, Trans::No, 3.0, &mut c);
        let mut want = naive_gemm(&a, &b);
        want = Matrix::from_fn(3, 3, |i, j| {
            2.0 * want.get(i, j) + 3.0 * if i == j { 1.0 } else { 0.0 }
        });
        assert!(c.max_diff(&want) < 1e-13);
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = test_mat(6, 3, 0.5);
        let mut c1 = spd(6);
        let mut c2 = c1.clone();
        syrk_lower(-1.0, &a, 1.0, &mut c1);
        gemm(-1.0, &a, Trans::No, &a, Trans::Yes, 1.0, &mut c2);
        assert!(c1.max_diff(&c2) < 1e-13);
    }

    #[test]
    fn trsm_left_solves() {
        let l = potrf(&spd(6)).expect("spd");
        let x = test_mat(6, 4, 3.0);
        let mut b = Matrix::zeros(6, 4);
        gemm(1.0, &l, Trans::No, &x, Trans::No, 0.0, &mut b);
        trsm_left_lower(&l, &mut b);
        assert!(b.max_diff(&x) < 1e-10);
    }

    #[test]
    fn trsm_right_solves() {
        let l = potrf(&spd(5)).expect("spd");
        let x = test_mat(3, 5, 3.0);
        let mut b = Matrix::zeros(3, 5);
        gemm(1.0, &x, Trans::No, &l, Trans::Yes, 0.0, &mut b);
        trsm_right_lower_t(&l, &mut b);
        assert!(b.max_diff(&x) < 1e-10);
    }

    #[test]
    fn potrf_factorizes_spd() {
        let a = spd(12);
        let l = potrf(&a).expect("spd");
        assert!(crate::cholesky_residual(&a, &l) < 1e-14);
        // Strictly lower result has zero upper triangle.
        for j in 1..12 {
            for i in 0..j {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Matrix::identity(4);
        a.set(2, 2, -1.0);
        assert_eq!(potrf(&a), Err(2));
    }
}
