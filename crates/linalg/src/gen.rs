//! The paper's `st-2d-sqexp` problem generator (§6.4.2): a squared-
//! exponential (Gaussian) covariance matrix over a 2-D point set, the
//! geostatistics kernel HiCMA factorizes.

use crate::matrix::Matrix;

/// A 2-D point grid in the unit square, ordered row-major, with a small
/// deterministic jitter (as spatial-statistics generators use) to avoid
/// degenerate regular spacing.
#[derive(Debug, Clone)]
pub struct Grid2d {
    pub points: Vec<(f64, f64)>,
}

impl Grid2d {
    /// `n` points laid out on a ⌈√n⌉ grid.
    pub fn new(n: usize) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        let mut points = Vec::with_capacity(n);
        for idx in 0..n {
            let i = idx / side;
            let j = idx % side;
            // Deterministic jitter from a simple hash.
            let h =
                ((idx as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64 / (1u64 << 24) as f64;
            let jit = (h - 0.5) * 0.2 / side as f64;
            points.push((
                (i as f64 + 0.5) / side as f64 + jit,
                (j as f64 + 0.5) / side as f64 - jit,
            ));
        }
        Grid2d { points }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Squared-exponential covariance block between point ranges
/// `[r0, r0+rows)` and `[c0, c0+cols)`:
/// `k(x,y) = exp(−‖x−y‖² / (2ℓ²))`, plus `nugget` on the global diagonal
/// (regularization that keeps the matrix positive definite at the small
/// problem sizes used for Numeric verification).
pub fn sqexp_covariance(
    grid: &Grid2d,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    length_scale: f64,
    nugget: f64,
) -> Matrix {
    let inv = 1.0 / (2.0 * length_scale * length_scale);
    Matrix::from_fn(rows, cols, |i, j| {
        let (xa, ya) = grid.points[r0 + i];
        let (xb, yb) = grid.points[c0 + j];
        let d2 = (xa - xb).powi(2) + (ya - yb).powi(2);
        let k = (-d2 * inv).exp();
        if r0 + i == c0 + j {
            k + nugget
        } else {
            k
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::potrf;
    use crate::svd::{rank_at, rank_at_abs, svd_jacobi};

    #[test]
    fn grid_stays_in_unit_square() {
        let g = Grid2d::new(100);
        assert_eq!(g.len(), 100);
        for &(x, y) in &g.points {
            assert!((-0.01..=1.01).contains(&x));
            assert!((-0.01..=1.01).contains(&y));
        }
    }

    #[test]
    fn covariance_is_symmetric_positive_definite() {
        let g = Grid2d::new(64);
        let a = sqexp_covariance(&g, 0, 0, 64, 64, 0.1, 1e-4);
        for i in 0..64 {
            for j in 0..64 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-15);
            }
        }
        assert!(potrf(&a).is_ok(), "sq-exp covariance must be SPD");
    }

    #[test]
    fn off_diagonal_blocks_are_low_rank() {
        // The heart of HiCMA: well-separated blocks compress heavily.
        let g = Grid2d::new(256);
        let block = sqexp_covariance(&g, 0, 192, 64, 64, 0.1, 0.0);
        let (_, s, _) = svd_jacobi(&block);
        // HiCMA truncates at absolute accuracy: the covariance scale is
        // O(1), so tiny far-field singular values drop out.
        let r = rank_at_abs(&s, 1e-8);
        assert!(r < 32, "distant block should be low rank, got {r}");
        assert!(r > 0);
    }

    #[test]
    fn diagonal_block_is_full_rank() {
        let g = Grid2d::new(256);
        let block = sqexp_covariance(&g, 0, 0, 32, 32, 0.1, 1e-4);
        let (_, s, _) = svd_jacobi(&block);
        assert_eq!(rank_at(&s, 1e-12), 32);
    }
}
