//! # amt-linalg
//!
//! Dense double-precision linear algebra for the HiCMA reproduction:
//! column-major matrices, the BLAS-3 kernels a tile Cholesky needs
//! (GEMM / SYRK / TRSM / POTRF), Householder QR and one-sided Jacobi SVD
//! for low-rank compression, and the paper's `st-2d-sqexp` covariance
//! problem generator (§6.4.1).
//!
//! Everything is implemented from scratch (no BLAS/LAPACK binding) and
//! validated against naive reference implementations and algebraic
//! identities in the test suite. Kernels favour clarity with reasonable
//! cache behaviour (blocked/ikj loops); they are executed for *correctness*
//! in Numeric-mode runs while virtual time comes from the cost model, so
//! absolute kernel speed does not affect reproduction results.

mod blas;
mod gen;
mod matrix;
mod qr;
mod svd;

pub use blas::{gemm, potrf, syrk_lower, trsm_left_lower, trsm_right_lower_t, Trans};
pub use gen::{sqexp_covariance, Grid2d};
pub use matrix::Matrix;
pub use qr::qr_thin;
pub use svd::{rank_at, rank_at_abs, svd_jacobi};

/// Relative Frobenius-norm residual of a Cholesky factorization:
/// ‖A − L·Lᵀ‖_F / ‖A‖_F.
pub fn cholesky_residual(a: &Matrix, l: &Matrix) -> f64 {
    let mut llt = Matrix::zeros(l.rows(), l.rows());
    gemm(1.0, l, Trans::No, l, Trans::Yes, 0.0, &mut llt);
    let mut diff = 0.0;
    let mut norm = 0.0;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let d = a.get(i, j) - llt.get(i, j);
            diff += d * d;
            norm += a.get(i, j) * a.get(i, j);
        }
    }
    (diff / norm).sqrt()
}
