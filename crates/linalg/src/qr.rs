//! Thin Householder QR, used for low-rank recompression.

use crate::matrix::Matrix;

/// Thin QR factorization `A = Q·R` with `Q` of shape `m × min(m,n)` having
/// orthonormal columns and `R` upper-triangular `min(m,n) × n`.
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Householder vectors stored per reflection.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector for column j below the diagonal.
        let mut norm = 0.0;
        for i in j..m {
            norm += r.get(i, j) * r.get(i, j);
        }
        let norm = norm.sqrt();
        let mut v = vec![0.0; m - j];
        if norm == 0.0 {
            vs.push(v);
            continue;
        }
        let a0 = r.get(j, j);
        let alpha = if a0 >= 0.0 { -norm } else { norm };
        v[0] = a0 - alpha;
        for i in (j + 1)..m {
            v[i - j] = r.get(i, j);
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(v);
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to R[j.., j..].
        for c in j..n {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * r.get(i, c);
            }
            let scale = 2.0 * dot / vnorm2;
            for i in j..m {
                let val = r.get(i, c) - scale * v[i - j];
                r.set(i, c, val);
            }
        }
        vs.push(v);
    }

    // Accumulate Q by applying the reflections to the identity (thin).
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q.set(j, j, 1.0);
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for c in 0..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * q.get(i, c);
            }
            let scale = 2.0 * dot / vnorm2;
            for i in j..m {
                let val = q.get(i, c) - scale * v[i - j];
                q.set(i, c, val);
            }
        }
    }

    // Zero the strictly-lower part of R and trim to k × n.
    let mut rk = Matrix::zeros(k, n);
    for j in 0..n {
        for i in 0..k.min(j + 1) {
            rk.set(i, j, r.get(i, j));
        }
    }
    (q, rk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, Trans};

    fn check_qr(a: &Matrix) {
        let (q, r) = qr_thin(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.rows(), a.rows());
        assert_eq!(q.cols(), k);
        assert_eq!(r.rows(), k);
        assert_eq!(r.cols(), a.cols());
        // Q R == A
        let mut qr = Matrix::zeros(a.rows(), a.cols());
        gemm(1.0, &q, Trans::No, &r, Trans::No, 0.0, &mut qr);
        assert!(qr.max_diff(a) < 1e-12, "QR != A (diff {})", qr.max_diff(a));
        // QᵀQ == I
        let mut qtq = Matrix::zeros(k, k);
        gemm(1.0, &q, Trans::Yes, &q, Trans::No, 0.0, &mut qtq);
        assert!(
            qtq.max_diff(&Matrix::identity(k)) < 1e-12,
            "Q not orthonormal"
        );
        // R upper-triangular
        for j in 0..r.cols() {
            for i in (j + 1)..r.rows() {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn tall_matrix() {
        check_qr(&Matrix::from_fn(8, 3, |i, j| {
            ((i * 7 + j * 3) as f64).cos()
        }));
    }

    #[test]
    fn wide_matrix() {
        check_qr(&Matrix::from_fn(3, 8, |i, j| ((i * 5 + j) as f64).sin()));
    }

    #[test]
    fn square_matrix() {
        check_qr(&Matrix::from_fn(6, 6, |i, j| {
            1.0 / (1.0 + i as f64 + j as f64)
        }));
    }

    #[test]
    fn rank_deficient() {
        // Two identical columns.
        let a = Matrix::from_fn(5, 3, |i, j| if j == 2 { i as f64 } else { (i + j) as f64 });
        check_qr(&a);
    }

    #[test]
    fn zero_matrix() {
        check_qr(&Matrix::zeros(4, 2));
    }
}
