//! One-sided Jacobi SVD — small, robust, dependency-free; used to truncate
//! low-rank blocks to the requested accuracy.

use crate::matrix::Matrix;

/// Singular value decomposition `A = U · diag(s) · Vᵀ` with `U: m × n`,
/// `s` descending, `V: n × n` (requires `m ≥ n`; transpose first if not).
pub fn svd_jacobi(a: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "svd_jacobi expects m >= n (got {m} x {n})");
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    let eps = 1e-15;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(1e-300));
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    u.set(i, p, c * up - s * uq);
                    u.set(i, q, s * up + c * uq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }

    // Column norms are the singular values; normalize U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        *s = (0..m)
            .map(|i| u.get(i, j) * u.get(i, j))
            .sum::<f64>()
            .sqrt();
    }
    order.sort_by(|&a, &b| {
        sigma[b]
            .partial_cmp(&sigma[a])
            .expect("finite singular values")
    });

    let mut us = Matrix::zeros(m, n);
    let mut vs = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        let s = sigma[src];
        s_sorted[dst] = s;
        for i in 0..m {
            us.set(i, dst, if s > 0.0 { u.get(i, src) / s } else { 0.0 });
        }
        for i in 0..n {
            vs.set(i, dst, v.get(i, src));
        }
    }
    (us, s_sorted, vs)
}

/// Numerical rank at *absolute* threshold `tol` — what an accuracy-bounded
/// TLR compression uses when the global matrix scale is O(1), as for
/// covariance matrices.
pub fn rank_at_abs(s: &[f64], tol: f64) -> usize {
    s.iter().take_while(|&&x| x > tol).count()
}

/// Numerical rank at relative threshold `tol` (relative to the largest
/// singular value).
pub fn rank_at(s: &[f64], tol: f64) -> usize {
    let smax = s.first().copied().unwrap_or(0.0);
    if smax == 0.0 {
        return 0;
    }
    s.iter().take_while(|&&x| x > tol * smax).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, Trans};

    fn reconstruct(u: &Matrix, s: &[f64], v: &Matrix) -> Matrix {
        let n = s.len();
        let mut usv = Matrix::zeros(u.rows(), v.rows());
        let mut us = u.clone();
        for (j, &sv) in s.iter().enumerate().take(n) {
            for i in 0..u.rows() {
                let val = us.get(i, j) * sv;
                us.set(i, j, val);
            }
        }
        gemm(1.0, &us, Trans::No, v, Trans::Yes, 0.0, &mut usv);
        usv
    }

    #[test]
    fn reconstructs_random_matrix() {
        let a = Matrix::from_fn(8, 5, |i, j| ((3 * i + 2 * j) as f64).sin());
        let (u, s, v) = svd_jacobi(&a);
        assert!(reconstruct(&u, &s, &v).max_diff(&a) < 1e-12);
        // Descending.
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
        // U orthonormal columns.
        let mut utu = Matrix::zeros(5, 5);
        gemm(1.0, &u, Trans::Yes, &u, Trans::No, 0.0, &mut utu);
        assert!(utu.max_diff(&Matrix::identity(5)) < 1e-12);
    }

    #[test]
    fn identifies_exact_low_rank() {
        // Rank-2 matrix.
        let x = Matrix::from_fn(10, 2, |i, j| (i + j + 1) as f64);
        let y = Matrix::from_fn(6, 2, |i, j| ((i * j) as f64).cos());
        let mut a = Matrix::zeros(10, 6);
        gemm(1.0, &x, Trans::No, &y, Trans::Yes, 0.0, &mut a);
        let (_, s, _) = svd_jacobi(&a);
        assert_eq!(rank_at(&s, 1e-10), 2, "{s:?}");
    }

    #[test]
    fn known_singular_values_of_diagonal() {
        let mut a = Matrix::zeros(4, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, 5.0);
        a.set(2, 2, 1.0);
        let (_, s, _) = svd_jacobi(&a);
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let a = Matrix::zeros(5, 3);
        let (_, s, _) = svd_jacobi(&a);
        assert_eq!(rank_at(&s, 1e-10), 0);
    }
}
