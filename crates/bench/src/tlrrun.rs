//! HiCMA TLR Cholesky measurement runner (Figures 4, 5; Table 2).

use amt_comm::BackendKind;
use amt_core::{Cluster, ClusterConfig, ExecMode};
use amt_tlr::{TlrCholesky, TlrProblem};

/// One TLR Cholesky run configuration.
#[derive(Debug, Clone)]
pub struct TlrRunCfg {
    pub backend: BackendKind,
    pub nodes: usize,
    pub n: usize,
    pub tile_size: usize,
    pub multithread_am: bool,
    /// Message-layer tuning overlay (AM batching, multicast trees); the
    /// default leaves the paper configuration untouched.
    pub tuning: crate::CommTuning,
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct TlrRunResult {
    pub tts_s: f64,
    /// Exact virtual makespan in integer nanoseconds (for golden-report
    /// byte-identity checks; `tts_s` is this value in seconds).
    pub makespan_ns: u64,
    /// Mean end-to-end latency (ACTIVATE send → data arrival), µs.
    pub e2e_us: f64,
    /// Mean individual ACTIVATE message latency, µs.
    pub msg_us: f64,
    /// Mean control-path latency (ACTIVATE send → GET arrival at owner), µs.
    pub req_us: f64,
    pub tasks: u64,
    /// Engine events executed by the simulation (wall-clock cost driver).
    pub sim_events: u64,
    pub mean_rank: f64,
    pub worker_util: f64,
    pub comm_util: f64,
}

/// Build and execute one paper-configured CostOnly TLR Cholesky.
pub fn run_tlr(cfg: &TlrRunCfg) -> TlrRunResult {
    let problem = TlrProblem::new(cfg.n, cfg.tile_size);
    let (chol, graph) = TlrCholesky::build_cost_only(problem, cfg.nodes);
    let mut ccfg = ClusterConfig {
        mode: ExecMode::CostOnly,
        multithread_am: cfg.multithread_am,
        // HiCMA relies on PaRSEC's priority-relative deferral to pace data
        // fetches (§4.1/§6.4.1); the byte budget models it.
        get_window_bytes: 2 << 20,
        ..ClusterConfig::expanse(cfg.backend, cfg.nodes)
    };
    cfg.tuning.apply(&mut ccfg);
    crate::ObsSink::arm(&mut ccfg);
    let mut cluster = Cluster::new(ccfg);
    let report = cluster.execute(graph);
    assert!(report.complete(), "TLR run incomplete: {report:?}");
    crate::ObsSink::capture(&cluster, &report);
    TlrRunResult {
        tts_s: report.makespan.as_secs_f64(),
        makespan_ns: report.makespan.as_ns(),
        e2e_us: if report.e2e_latency_us.count() > 0 {
            report.e2e_latency_us.mean()
        } else {
            0.0
        },
        msg_us: if report.msg_latency_us.count() > 0 {
            report.msg_latency_us.mean()
        } else {
            0.0
        },
        req_us: if report.request_latency_us.count() > 0 {
            report.request_latency_us.mean()
        } else {
            0.0
        },
        tasks: report.tasks_executed,
        sim_events: report.sim_events,
        mean_rank: chol.stats.mean_rank,
        worker_util: report.worker_util,
        comm_util: report.comm_util,
    }
}

/// The paper's tile-size axis (Fig. 4).
pub const TILE_SIZES: [usize; 9] = [1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000];

/// Scaled default problem size: every paper tile size divides it (the
/// paper's N = 360 000 also does).
pub const N_SCALED: usize = 144_000;
pub const N_FULL: usize = 360_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tile_size_divides_both_problem_sizes() {
        for ts in TILE_SIZES {
            assert_eq!(N_SCALED % ts, 0, "{ts} does not divide N_SCALED");
            assert_eq!(N_FULL % ts, 0, "{ts} does not divide N_FULL");
        }
    }

    #[test]
    fn small_run_produces_sane_metrics() {
        let r = run_tlr(&TlrRunCfg {
            backend: BackendKind::Lci,
            nodes: 4,
            n: 24_000,
            tile_size: 3000,
            multithread_am: false,
            tuning: Default::default(),
        });
        assert!(r.tts_s > 0.0);
        assert!(r.e2e_us > 0.0);
        assert!(r.tasks > 0);
        assert!(r.worker_util > 0.0 && r.worker_util <= 1.0);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use amt_core::{Cluster, ClusterConfig, ExecMode};
    use amt_tlr::{TlrCholesky, TlrProblem};

    #[test]
    #[ignore = "diagnostic"]
    fn diag_window_sweep() {
        for window in [1usize, 2, 8, 1024] {
            // MiB of in-flight fetch budget
            for backend in [BackendKind::Lci, BackendKind::Mpi] {
                let problem = TlrProblem::new(144_000, 1200);
                let (_, graph) = TlrCholesky::build_cost_only(problem, 16);
                let mut cluster = Cluster::new(ClusterConfig {
                    mode: ExecMode::CostOnly,
                    get_window_bytes: window << 20,
                    ..ClusterConfig::expanse(backend, 16)
                });
                let r = cluster.execute(graph);
                println!(
                    "window={window} {backend:?}: tts={:.3}s e2e={:.0}us msg={:.0}us cutil={:.3}",
                    r.makespan.as_secs_f64(),
                    r.e2e_latency_us.mean(),
                    r.msg_latency_us.mean(),
                    r.comm_util,
                );
            }
        }
    }
}

#[cfg(test)]
mod diag2 {
    use super::*;
    use amt_core::{Cluster, ClusterConfig, ExecMode};
    use amt_netmodel::FabricConfig;
    use amt_simnet::SimTime;
    use amt_tlr::{TlrCholesky, TlrProblem};

    #[test]
    #[ignore = "diagnostic"]
    fn diag_what_binds_e2e() {
        // (label, bandwidth Gbit/s, activate cost ns)
        for (label, bw, act) in [
            ("baseline", 100.0, 2800u64),
            ("10x bandwidth", 1000.0, 2800),
            ("cheap activate", 100.0, 300),
        ] {
            for backend in [BackendKind::Lci, BackendKind::Mpi] {
                let problem = TlrProblem::new(360_000, 1200);
                let (_, graph) = TlrCholesky::build_cost_only(problem, 16);
                let mut cfg = ClusterConfig {
                    mode: ExecMode::CostOnly,
                    ..ClusterConfig::expanse(backend, 16)
                };
                cfg.fabric = FabricConfig {
                    nic_bandwidth_gbps: bw,
                    ..FabricConfig::expanse(16)
                };
                cfg.cost.activate_record_cost = SimTime::from_ns(act);
                let mut cluster = Cluster::new(cfg);
                let r = cluster.execute(graph);
                println!(
                    "{label} {backend:?}: tts={:.3}s e2e mean={:.0} std={:.0} max={:.0}us msg={:.0}us flows={}",
                    r.makespan.as_secs_f64(),
                    r.e2e_latency_us.mean(),
                    r.e2e_latency_us.std_dev(),
                    r.e2e_latency_us.max(),
                    r.msg_latency_us.mean(),
                    r.e2e_latency_us.count(),
                );
            }
        }
    }
}
