//! Minimal fixed-width table printing for harness output.

/// Print a header row followed by a rule.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$}  ", w = w));
        rule.push_str(&format!("{:->w$}  ", "", w = w));
    }
    println!("{line}");
    println!("{rule}");
}

/// Print one row of already-formatted cells with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, w) in cells {
        line.push_str(&format!("{cell:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Shorthand: build a `(String, usize)` cell.
pub fn cell(s: impl Into<String>, w: usize) -> (String, usize) {
    (s.into(), w)
}

/// Section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_build() {
        assert_eq!(cell("x", 5), ("x".to_string(), 5));
    }
}
