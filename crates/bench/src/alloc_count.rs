//! A counting [`GlobalAlloc`] for deterministic allocation-budget metrics.
//!
//! The simulator is single-threaded and deterministic, so the number of
//! heap allocations a scenario performs is a *repeatable* number, not a
//! noisy wall-clock measurement. The comm-datapath benchmark registers
//! [`CountingAlloc`] as its `#[global_allocator]` and reports
//! allocations-per-delivered-message; verify.sh then diffs those columns
//! against the committed `BENCH_comm.json` bounds.
//!
//! Only the benchmark binary that wants the metric registers the allocator
//! — the library crates stay on the system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn live_add(n: u64) {
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn live_sub(n: u64) {
    LIVE.fetch_sub(n, Ordering::Relaxed);
}

/// Pass-through system allocator that counts every allocation.
/// Register with `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counters are side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        live_add(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        live_sub(layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is morally a fresh allocation: count it so `Vec` doubling
        // isn't free.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        live_sub(layout.size() as u64);
        live_add(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Currently live heap bytes (alloc − dealloc) under [`CountingAlloc`].
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since the last
/// [`reset_peak_live_bytes`] — a deterministic peak-RSS proxy.
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restart peak tracking from the current live level, so the next
/// [`peak_live_bytes`] reading measures one region's high-water mark.
pub fn reset_peak_live_bytes() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Counter snapshot; subtract two to get a scenario's allocation cost.
#[derive(Debug, Clone, Copy)]
pub struct AllocSnapshot {
    pub allocs: u64,
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Current global counters.
    pub fn now() -> Self {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Allocations and bytes since `self` was taken.
    pub fn since(&self) -> AllocSnapshot {
        let n = Self::now();
        AllocSnapshot {
            allocs: n.allocs - self.allocs,
            bytes: n.bytes - self.bytes,
        }
    }
}
