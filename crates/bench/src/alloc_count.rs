//! A counting [`GlobalAlloc`] for deterministic allocation-budget metrics.
//!
//! The simulator is single-threaded and deterministic, so the number of
//! heap allocations a scenario performs is a *repeatable* number, not a
//! noisy wall-clock measurement. The comm-datapath benchmark registers
//! [`CountingAlloc`] as its `#[global_allocator]` and reports
//! allocations-per-delivered-message; verify.sh then diffs those columns
//! against the committed `BENCH_comm.json` bounds.
//!
//! Only the benchmark binary that wants the metric registers the allocator
//! — the library crates stay on the system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Pass-through system allocator that counts every allocation.
/// Register with `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counters are side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is morally a fresh allocation: count it so `Vec` doubling
        // isn't free.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Counter snapshot; subtract two to get a scenario's allocation cost.
#[derive(Debug, Clone, Copy)]
pub struct AllocSnapshot {
    pub allocs: u64,
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Current global counters.
    pub fn now() -> Self {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Allocations and bytes since `self` was taken.
    pub fn since(&self) -> AllocSnapshot {
        let n = Self::now();
        AllocSnapshot {
            allocs: n.allocs - self.allocs,
            bytes: n.bytes - self.bytes,
        }
    }
}
