//! The §6.2/§6.3 task-based windowed ping-pong benchmark, expressed as a
//! runtime task graph.
//!
//! `PINGPONG(t, f, c)` operates on fragment `f` of stream `c` at iteration
//! `t`; fragments live alternately on the two nodes, so every iteration
//! moves the whole window across the network.
//!
//! **Synchronized mode (Fig. 2):** the paper's benchmark forces full
//! serialization between iterations — at any instant a node is either only
//! sending or only receiving (§6.2 attributes the two-stream anomaly to
//! exactly this property). We express that strictly in the task graph: a
//! `SEND(t, f, c)` stage, gated by the global `SYNC(t)` task (control
//! dependencies), publishes each fragment, so iteration t+1's transfers
//! cannot overlap iteration t's. **Unsynchronized mode (Fig. 2b "no sync",
//! Fig. 3):** fragments free-run and opposite-direction transfers overlap,
//! recovering full-duplex bandwidth — the effect the paper observes when
//! loosening the synchronization.

use amt_comm::BackendKind;
use amt_core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, RunReport, TaskDesc, TaskGraph};

/// Ping-pong workload parameters.
#[derive(Debug, Clone)]
pub struct PingPongCfg {
    /// Fragment size N in bytes.
    pub frag_bytes: usize,
    /// Fragments per stream (window). The paper keeps
    /// `window × frag_bytes = 256 MiB`.
    pub window: usize,
    /// Concurrent streams (1 or 2 in the paper).
    pub streams: usize,
    /// Iterations.
    pub iters: usize,
    /// Insert the serializing SYNC task between iterations.
    pub sync: bool,
    /// FMA operations per 8-byte element (0 = pure bandwidth; Fig. 3 uses
    /// `√(M/8)` for GEMM-like intensity).
    pub fma_per_elem: f64,
}

impl PingPongCfg {
    /// The paper's bandwidth configuration for fragment size `n`.
    pub fn bandwidth(n: usize, streams: usize, sync: bool, iters: usize) -> Self {
        let window = ((256.0 * 1024.0 * 1024.0) / n as f64).round().max(1.0) as usize;
        PingPongCfg {
            frag_bytes: n,
            window,
            streams,
            iters,
            sync,
            fma_per_elem: 0.0,
        }
    }

    /// Fig. 3: GEMM-like intensity, total FLOPs ≈ `total_flops`.
    pub fn overlap(n: usize, total_flops: f64) -> Self {
        let window = ((256.0 * 1024.0 * 1024.0) / n as f64).round().max(1.0) as usize;
        let fma = (n as f64 / 8.0).sqrt();
        let flops_per_task = 2.0 * fma * (n as f64 / 8.0);
        let iters = (total_flops / (flops_per_task * window as f64))
            .round()
            .max(3.0) as usize;
        PingPongCfg {
            frag_bytes: n,
            window,
            streams: 1,
            iters,
            sync: false,
            fma_per_elem: fma,
        }
    }

    pub fn flops_per_task(&self) -> f64 {
        2.0 * self.fma_per_elem * (self.frag_bytes as f64 / 8.0)
    }

    /// Bytes crossing the network over the whole run (iteration 0 is
    /// local).
    pub fn bytes_moved(&self) -> f64 {
        (self.iters.saturating_sub(1) * self.window * self.streams * self.frag_bytes) as f64
    }

    /// Build the 2-node task graph.
    pub fn build(&self) -> TaskGraph {
        let mut g = GraphBuilder::new(2);
        let window = self.window as u64;
        let streams = self.streams as u64;
        let frag_key = |c: u64, f: u64| (c * window + f) * 3;
        let tok_key = |c: u64, f: u64| (c * window + f) * 3 + 1;
        let mid_key = |c: u64, f: u64| (c * window + f) * 3 + 2;
        let sync_key = 3 * window * streams;

        for c in 0..streams {
            for f in 0..window {
                // Initial fragment resides where PINGPONG(0, f, c) runs.
                g.data(frag_key(c, f), self.frag_bytes, (c % 2) as usize, None);
            }
        }

        let flops = self.flops_per_task();
        for t in 0..self.iters as u64 {
            // Compute stage.
            for c in 0..streams {
                let node = ((t + c) % 2) as usize;
                for f in 0..window {
                    let mut desc = TaskDesc::new("pingpong")
                        .on_node(node)
                        .flops(flops)
                        .read_key(frag_key(c, f));
                    if self.sync {
                        // Result goes to a node-local intermediate; the
                        // SEND stage publishes it after the barrier.
                        desc = desc
                            .write(mid_key(c, f), self.frag_bytes)
                            .write(tok_key(c, f), 0);
                    } else {
                        desc = desc.write(frag_key(c, f), self.frag_bytes);
                    }
                    g.insert(desc);
                }
            }
            if self.sync {
                // Global barrier over both streams (the paper couples the
                // streams through one synchronization, §6.2).
                let mut desc = TaskDesc::new("sync").on_node(0).write(sync_key, 0);
                for c in 0..streams {
                    for f in 0..window {
                        desc = desc.read_key(tok_key(c, f));
                    }
                }
                g.insert(desc);
                // Publish stage: makes iteration t's fragments visible to
                // iteration t+1 only after the barrier.
                for c in 0..streams {
                    let node = ((t + c) % 2) as usize;
                    for f in 0..window {
                        g.insert(
                            TaskDesc::new("send")
                                .on_node(node)
                                .read_key(mid_key(c, f))
                                .read_key(sync_key)
                                .write(frag_key(c, f), self.frag_bytes),
                        );
                    }
                }
            }
        }
        g.build()
    }
}

/// Result of one ping-pong measurement.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    pub gbit_per_s: f64,
    pub tflop_per_s: f64,
    pub makespan_s: f64,
    pub report: RunReport,
}

/// Execute the workload on a fresh 2-node paper-configured cluster.
pub fn run_pingpong(backend: BackendKind, cfg: &PingPongCfg) -> PingPongResult {
    run_pingpong_cluster(
        cfg,
        ClusterConfig {
            mode: ExecMode::CostOnly,
            ..ClusterConfig::expanse(backend, 2)
        },
    )
}

/// Execute the workload on a caller-configured cluster (ablations).
pub fn run_pingpong_cluster(cfg: &PingPongCfg, mut ccfg: ClusterConfig) -> PingPongResult {
    ccfg.nodes = 2;
    crate::ObsSink::arm(&mut ccfg);
    let graph = cfg.build();
    let total_flops = graph.total_flops();
    let mut cluster = Cluster::new(ccfg);
    let report = cluster.execute(graph);
    assert!(report.complete(), "ping-pong did not complete: {report:?}");
    crate::ObsSink::capture(&cluster, &report);
    let secs = report.makespan.as_secs_f64();
    PingPongResult {
        gbit_per_s: cfg.bytes_moved() * 8.0 / secs / 1e9,
        tflop_per_s: total_flops / secs / 1e12,
        makespan_s: secs,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_keeps_iteration_volume_constant() {
        for n in [8 * 1024, 1024 * 1024, 8 * 1024 * 1024] {
            let cfg = PingPongCfg::bandwidth(n, 1, true, 4);
            let vol = cfg.window * cfg.frag_bytes;
            assert!((vol as f64 - 256.0 * 1024.0 * 1024.0).abs() / (vol as f64) < 0.01);
        }
    }

    #[test]
    fn graph_shape_with_sync() {
        let cfg = PingPongCfg {
            frag_bytes: 1024,
            window: 4,
            streams: 2,
            iters: 3,
            sync: true,
            fma_per_elem: 0.0,
        };
        let graph = cfg.build();
        // 3 iters × (2 streams × 4 frags compute + 1 sync + 2×4 send).
        assert_eq!(graph.task_count(), 3 * (2 * 4 + 1 + 2 * 4));
    }

    #[test]
    fn large_fragments_reach_near_peak_bandwidth() {
        let cfg = PingPongCfg::bandwidth(8 * 1024 * 1024, 1, true, 4);
        let lci = run_pingpong(BackendKind::Lci, &cfg);
        assert!(
            lci.gbit_per_s > 80.0 && lci.gbit_per_s <= 100.0,
            "LCI 8 MiB bandwidth {:.1} Gbit/s",
            lci.gbit_per_s
        );
        let mpi = run_pingpong(BackendKind::Mpi, &cfg);
        assert!(
            mpi.gbit_per_s > 75.0,
            "MPI 8 MiB bandwidth {:.1} Gbit/s",
            mpi.gbit_per_s
        );
    }

    #[test]
    fn lci_sustains_smaller_fragments_than_mpi() {
        // The headline Fig. 2a effect, at a reduced point count.
        let cfg = PingPongCfg::bandwidth(32 * 1024, 1, true, 4);
        let lci = run_pingpong(BackendKind::Lci, &cfg);
        let mpi = run_pingpong(BackendKind::Mpi, &cfg);
        assert!(
            lci.gbit_per_s > mpi.gbit_per_s,
            "at 32 KiB LCI ({:.1}) must beat MPI ({:.1})",
            lci.gbit_per_s,
            mpi.gbit_per_s
        );
    }

    #[test]
    fn overlap_config_conserves_total_flops() {
        let a = PingPongCfg::overlap(64 * 1024, 1e11);
        let b = PingPongCfg::overlap(1024 * 1024, 1e11);
        let fa = a.flops_per_task() * (a.window * a.iters) as f64;
        let fb = b.flops_per_task() * (b.window * b.iters) as f64;
        assert!((fa / fb - 1.0).abs() < 0.3, "{fa:.2e} vs {fb:.2e}");
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore = "diagnostic"]
    fn diag_one_point() {
        for (label, n) in [
            ("16KiB", 16 * 1024),
            ("64KiB", 64 * 1024),
            ("256KiB", 256 * 1024),
        ] {
            for backend in [BackendKind::Lci, BackendKind::Mpi] {
                let cfg = PingPongCfg::bandwidth(n, 1, true, 5);
                let r = run_pingpong(backend, &cfg);
                println!(
                    "{label} {backend:?}: bw={:.1} Gbit/s comm_util={:.2} prog_util={:.2} e2e_mean={:.1}us msg_mean={:.1}us makespan={:.3}s window={}",
                    r.gbit_per_s,
                    r.report.comm_util,
                    r.report.progress_util,
                    r.report.e2e_latency_us.mean(),
                    r.report.msg_latency_us.mean(),
                    r.makespan_s,
                    cfg.window,
                );
            }
        }
    }
}

#[cfg(test)]
mod diag2 {
    use super::*;

    #[test]
    #[ignore = "diagnostic"]
    fn diag_overlap_large() {
        for n in [512 * 1024, 1024 * 1024] {
            for backend in [BackendKind::Lci, BackendKind::Mpi] {
                let cfg = PingPongCfg::overlap(n, 6e10);
                let r = run_pingpong(backend, &cfg);
                let s = &r.report.engine_stats;
                let retries: u64 = s.iter().map(|e| e.backend_retries.get()).sum();
                let delegated: u64 = s.iter().map(|e| e.delegated_recvs.get()).sum();
                let deferred: u64 = s.iter().map(|e| e.deferred_puts.get()).sum();
                let dynrecv: u64 = s.iter().map(|e| e.dynamic_recvs.get()).sum();
                println!(
                    "{} {backend:?}: tf={:.2} makespan={:.1}ms wutil={:.2} commutil={:.2} progutil={:.2} e2e={:.0}us retries={retries} delegated={delegated} deferred={deferred} dyn={dynrecv} window={} iters={}",
                    crate::fmt_size(n),
                    r.tflop_per_s,
                    r.makespan_s * 1e3,
                    r.report.worker_util,
                    r.report.comm_util,
                    r.report.progress_util,
                    r.report.e2e_latency_us.mean(),
                    cfg.window,
                    cfg.iters,
                );
            }
        }
    }
}

#[cfg(test)]
mod diag3 {
    use crate as amt_bench_self;
    use amt_bench_self::tlrrun::{run_tlr, TlrRunCfg};
    use amt_comm::BackendKind;

    #[test]
    #[ignore = "diagnostic"]
    fn diag_tlr_point() {
        for backend in [BackendKind::Lci, BackendKind::Mpi] {
            let t0 = std::time::Instant::now();
            let r = run_tlr(&TlrRunCfg {
                backend,
                nodes: 16,
                n: 360_000,
                tile_size: 1200,
                multithread_am: false,
                tuning: Default::default(),
            });
            println!(
                "{backend:?}: tts={:.3}s e2e={:.0}us msg={:.0}us tasks={} wutil={:.2} cutil={:.2} wall={:.1}s",
                r.tts_s, r.e2e_us, r.msg_us, r.tasks, r.worker_util, r.comm_util,
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
