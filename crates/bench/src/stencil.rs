//! Five-point stencil task-graph builder — the communication-bound halo
//! exchange pattern shared by the `stencil` example and the message-rate
//! harness.
//!
//! The domain is a `tiles × tiles` grid (one task per tile per sweep);
//! each sweep's task reads its own tile plus the four neighbour tiles
//! from the previous sweep, so tile boundaries crossing node boundaries
//! become runtime dataflows.

use amt_core::{DataDist, GraphBuilder, TaskDesc, TaskGraph, TileDist2d};

/// Build `sweeps` iterations of a 5-point stencil over a `tiles × tiles`
/// grid of `tile_elems²` f64 tiles distributed by `dist` (cost-only: no
/// kernels, declared sizes drive the protocol).
pub fn build_stencil(tiles: u64, tile_elems: usize, sweeps: u64, dist: &TileDist2d) -> TaskGraph {
    let nodes = dist.nodes();
    let mut g = GraphBuilder::new(nodes);
    let bytes = tile_elems * tile_elems * 8;
    // 5-point update: ~5 flops per element per sweep.
    let flops = 5.0 * (tile_elems * tile_elems) as f64;

    for r in 0..tiles {
        for c in 0..tiles {
            g.data(dist.key(r, c), bytes, dist.owner(dist.key(r, c)), None);
        }
    }
    for _s in 0..sweeps {
        for r in 0..tiles {
            for c in 0..tiles {
                let key = dist.key(r, c);
                let mut desc = TaskDesc::new("stencil")
                    .on_node(dist.owner(key))
                    .flops(flops)
                    .efficiency(0.15) // stencils are memory-bound
                    .read_key(key)
                    .write(key, bytes);
                for (dr, dc) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                    let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                    if nr >= 0 && nc >= 0 && (nr as u64) < tiles && (nc as u64) < tiles {
                        desc = desc.read_key(dist.key(nr as u64, nc as u64));
                    }
                }
                g.insert(desc);
            }
        }
    }
    g.build()
}
