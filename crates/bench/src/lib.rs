//! # amt-bench
//!
//! Workload builders and measurement helpers shared by the per-figure
//! benchmark harnesses (see `benches/`). Each harness regenerates one table
//! or figure of the paper; see `EXPERIMENTS.md` at the workspace root for
//! the index and recorded results.
//!
//! All harnesses run a *scaled* configuration by default so `cargo bench`
//! finishes in minutes on a laptop; pass `-- --full` (or set `AMT_FULL=1`)
//! for the paper-scale parameters.

pub mod pingpong;
pub mod table;
pub mod tlrrun;

/// True when the harness should run paper-scale parameters.
pub fn full_scale(args: &[String]) -> bool {
    args.iter().any(|a| a == "--full") || std::env::var("AMT_FULL").is_ok_and(|v| v == "1")
}

/// Skip flag criterion-style harness args we don't use (`--bench`, test
/// filters), returning the interesting ones.
pub fn harness_args() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect()
}

/// Parse an optional `--backend <name>` / `--backend=<name>` harness flag
/// (names as in [`amt_comm::BackendKind::parse`]: `mpi`, `lci`,
/// `lci-direct`). `None` means the harness should cover its default set of
/// backends. Panics on an unknown backend name so typos fail loudly.
pub fn backend_arg(args: &[String]) -> Option<amt_comm::BackendKind> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let name = if a == "--backend" {
            it.next()
                .unwrap_or_else(|| panic!("--backend requires a value"))
                .as_str()
        } else if let Some(v) = a.strip_prefix("--backend=") {
            v
        } else {
            continue;
        };
        return Some(
            amt_comm::BackendKind::parse(name)
                .unwrap_or_else(|| panic!("unknown backend {name:?} (mpi|lci|lci-direct)")),
        );
    }
    None
}

/// Granularities of Fig. 2/3: 8 KiB → 8 MiB in √2 steps (the paper's
/// 90.5 KiB / 45.25 KiB points come from these half-power steps).
pub fn granularities(min_bytes: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut exact: f64 = 8.0 * 1024.0;
    while exact <= 8.0 * 1024.0 * 1024.0 + 1.0 {
        let g = exact.round() as usize;
        if g >= min_bytes {
            out.push(g);
        }
        exact *= std::f64::consts::SQRT_2;
    }
    out
}

/// Human-readable size.
pub fn fmt_size(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} KiB", b / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_series_matches_paper_points() {
        let g = granularities(8 * 1024);
        assert_eq!(g.first(), Some(&8192));
        assert_eq!(g.last(), Some(&(8 * 1024 * 1024)));
        // The √2 ladder contains the quoted 90.5 KiB and 45.25 KiB points.
        assert!(g.iter().any(|&x| (x as f64 - 90.5 * 1024.0).abs() < 512.0));
        assert!(g.iter().any(|&x| (x as f64 - 45.25 * 1024.0).abs() < 512.0));
        assert_eq!(g.len(), 21);
    }

    #[test]
    fn backend_arg_parses_both_flag_forms() {
        use amt_comm::BackendKind;
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(backend_arg(&args(&["--full"])), None);
        assert_eq!(
            backend_arg(&args(&["--backend", "lci-direct"])),
            Some(BackendKind::LciDirect)
        );
        assert_eq!(
            backend_arg(&args(&["--full", "--backend=mpi"])),
            Some(BackendKind::Mpi)
        );
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(8192), "8.00 KiB");
        assert_eq!(fmt_size(8 * 1024 * 1024), "8.00 MiB");
    }
}
