//! # amt-bench
//!
//! Workload builders and measurement helpers shared by the per-figure
//! benchmark harnesses (see `benches/`). Each harness regenerates one table
//! or figure of the paper; see `EXPERIMENTS.md` at the workspace root for
//! the index and recorded results.
//!
//! All harnesses run a *scaled* configuration by default so `cargo bench`
//! finishes in minutes on a laptop; pass `-- --full` (or set `AMT_FULL=1`)
//! for the paper-scale parameters.

pub mod alloc_count;
pub mod pingpong;
pub mod stencil;
pub mod table;
pub mod tlrrun;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use amt_core::{Cluster, ClusterConfig, RunReport};

/// Process-wide observability sink behind the `--trace-out <path>` /
/// `--metrics-out <path>` / `--calibrate-out <path>` flags. A harness (or
/// example) installs it once from its arguments; the shared runners
/// ([`pingpong::run_pingpong`], [`tlrrun::run_tlr`]) — or the caller, via
/// [`ObsSink::arm`] / [`ObsSink::capture`] — then record the **first**
/// executed configuration: its Chrome trace goes to `--trace-out` and its
/// metrics report to `--metrics-out`. The rest of the sweep runs
/// unobserved, so the flags never perturb more than one measurement.
///
/// `--calibrate-out` implies metrics and writes the measured
/// `amtlc-calib-v1` cost profile of the first captured run that *has* one
/// — i.e. the first **real** execution (`Cluster::execute_real`); virtual
/// runs carry no wall-clock costs, so the sink keeps arming until a real
/// run supplies the profile.
pub struct ObsSink {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    calibrate_out: Option<PathBuf>,
    captured: bool,
    calib_captured: bool,
}

static OBS: Mutex<Option<ObsSink>> = Mutex::new(None);

/// Parse a `--name <path>` / `--name=<path>` flag.
/// Parse a `--name <path>` / `--name=<path>` flag.
pub fn path_flag(args: &[String], name: &str) -> Option<PathBuf> {
    let eq = format!("{name}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return Some(PathBuf::from(
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a path value")),
            ));
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(PathBuf::from(v));
        }
    }
    None
}

impl ObsSink {
    /// Install the sink when any output flag is present in `args`.
    pub fn install(args: &[String]) {
        let trace_out = path_flag(args, "--trace-out");
        let metrics_out = path_flag(args, "--metrics-out");
        let calibrate_out = path_flag(args, "--calibrate-out");
        if trace_out.is_none() && metrics_out.is_none() && calibrate_out.is_none() {
            return;
        }
        *OBS.lock().expect("obs sink lock") = Some(ObsSink {
            trace_out,
            metrics_out,
            calibrate_out,
            captured: false,
            calib_captured: false,
        });
    }

    /// Enable the requested recordings on `cfg`. No-op when no sink is
    /// installed or everything requested was already captured.
    pub fn arm(cfg: &mut ClusterConfig) {
        if let Some(s) = OBS.lock().expect("obs sink lock").as_ref() {
            if !s.captured {
                cfg.trace |= s.trace_out.is_some();
                cfg.metrics |= s.metrics_out.is_some();
            }
            if !s.calib_captured {
                // Calibration needs the measured stage/kernel samples.
                cfg.metrics |= s.calibrate_out.is_some();
            }
        }
    }

    /// Write the artifacts of an armed cluster's last execution to the
    /// requested paths. Trace/metrics write on the first capture; the
    /// calibration profile writes on the first capture whose cluster has
    /// one (real executions only).
    pub fn capture(cluster: &Cluster, report: &RunReport) {
        let mut guard = OBS.lock().expect("obs sink lock");
        let Some(s) = guard.as_mut() else { return };
        if !s.calib_captured {
            if let (Some(path), Some(profile)) = (&s.calibrate_out, cluster.calibration_profile()) {
                std::fs::write(path, profile.to_json())
                    .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
                eprintln!("calibration profile written to {}", path.display());
                s.calib_captured = true;
            }
        }
        if s.captured {
            return;
        }
        // Only capture from a cluster that was actually armed for what the
        // sink wants — examples route arming at either the virtual sweep or
        // the real execution (an explicit `--threads` picks the latter), and
        // both call capture unconditionally.
        let cfg = cluster.config();
        if s.trace_out.is_some() && !cfg.trace {
            return;
        }
        if s.metrics_out.is_some() && !cfg.metrics {
            return;
        }
        s.captured = true;
        if let Some(path) = &s.trace_out {
            let json = cluster.trace_json().expect("trace of an executed cluster");
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("Chrome trace written to {}", path.display());
        }
        if let Some(path) = &s.metrics_out {
            std::fs::write(path, cluster.metrics_report(report).to_json())
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("metrics report written to {}", path.display());
        }
    }
}

impl ObsSink {
    /// Whether a sink is installed (used to force sequential sweeps so the
    /// "first executed configuration" stays well-defined).
    pub fn active() -> bool {
        OBS.lock().expect("obs sink lock").is_some()
    }
}

/// Parse the `--jobs N` / `--jobs=N` harness flag: how many worker threads
/// a sweep may use. `0` means one per available core. Defaults to 1
/// (sequential). Every simulation point is a self-contained [`Sim`], so
/// sweeps are embarrassingly parallel; results are always collected in
/// configuration order, making harness output identical for any `N`.
///
/// [`Sim`]: amt_simnet::Sim
pub fn jobs_arg(args: &[String]) -> usize {
    let mut it = args.iter();
    let jobs: usize = loop {
        let Some(a) = it.next() else { return 1 };
        let v = if a == "--jobs" {
            it.next()
                .unwrap_or_else(|| panic!("--jobs requires a value"))
                .as_str()
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v
        } else {
            continue;
        };
        break v
            .parse()
            .unwrap_or_else(|e| panic!("--jobs {v:?} is not a number: {e}"));
    };
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Parse the `--threads N` / `--threads=N` harness flag: how many
/// work-stealing worker threads a **real execution**
/// (`Cluster::execute_real`) uses. `0` or absent means one per available
/// core; `1` is fully deterministic. Distinct from [`jobs_arg`], which
/// parallelizes independent *simulation points* — `--threads` parallelizes
/// one real run.
pub fn threads_arg(args: &[String]) -> usize {
    let threads = threads_arg_opt(args).unwrap_or(0);
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Like [`threads_arg`], but reports whether the `--threads` flag was
/// present at all: `None` when absent, `Some(n)` (raw, `0` = one per
/// core) when given. Examples use presence to decide which execution the
/// observability sink captures — an explicit `--threads` directs
/// `--trace-out`/`--metrics-out` at the **real** run instead of the first
/// virtual one.
pub fn threads_arg_opt(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == "--threads" {
            it.next()
                .unwrap_or_else(|| panic!("--threads requires a value"))
                .as_str()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            v
        } else {
            continue;
        };
        return Some(
            v.parse()
                .unwrap_or_else(|e| panic!("--threads {v:?} is not a number: {e}")),
        );
    }
    None
}

/// Parse the `--cost-model <file>` / `--cost-model=<file>` flag: load an
/// `amtlc-calib-v1` profile (written by `--calibrate-out`) so the caller
/// can overlay measured charges onto its simulated cost model with
/// [`amt_core::CostModel::apply_profile`]. Panics loudly on a missing or
/// malformed file.
pub fn cost_model_arg(args: &[String]) -> Option<amt_core::CalibrationProfile> {
    let path = path_flag(args, "--cost-model")?;
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--cost-model {}: {e}", path.display()));
    Some(
        amt_core::CalibrationProfile::from_json(&text)
            .unwrap_or_else(|e| panic!("--cost-model {}: {e}", path.display())),
    )
}

/// Run `point(i)` for every `i` in `0..n` across up to `jobs` threads and
/// return the results **in index order** regardless of completion order.
///
/// Each simulation point builds and owns its entire `Sim`/`Cluster`, so
/// points share no mutable state and the per-point virtual-time results are
/// identical for any `jobs`. Worker threads pull indices from a shared
/// atomic counter (dynamic load balancing — sweep points differ wildly in
/// cost). A panic in any point propagates after the scope joins.
///
/// When an [`ObsSink`] is installed the sweep runs sequentially so the
/// "first executed configuration" that gets traced stays well-defined.
pub fn run_indexed<R: Send>(n: usize, jobs: usize, point: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let jobs = if ObsSink::active() {
        1
    } else {
        jobs.max(1).min(n.max(1))
    };
    if jobs == 1 {
        return (0..n).map(point).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = point(i);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every slot filled after join")
        })
        .collect()
}

/// [`run_indexed`] over a slice of configurations.
pub fn run_sweep<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    point: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    run_indexed(items.len(), jobs, |i| point(&items[i]))
}

/// True when the harness should run paper-scale parameters.
pub fn full_scale(args: &[String]) -> bool {
    args.iter().any(|a| a == "--full") || std::env::var("AMT_FULL").is_ok_and(|v| v == "1")
}

/// Skip flag criterion-style harness args we don't use (`--bench`, test
/// filters), returning the interesting ones.
pub fn harness_args() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect()
}

/// Parse an optional `--backend <name>` / `--backend=<name>` harness flag
/// (names as in [`amt_comm::BackendKind::parse`]: `mpi`, `lci`,
/// `lci-direct`). `None` means the harness should cover its default set of
/// backends. Panics on an unknown backend name so typos fail loudly.
pub fn backend_arg(args: &[String]) -> Option<amt_comm::BackendKind> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let name = if a == "--backend" {
            it.next()
                .unwrap_or_else(|| panic!("--backend requires a value"))
                .as_str()
        } else if let Some(v) = a.strip_prefix("--backend=") {
            v
        } else {
            continue;
        };
        return Some(
            amt_comm::BackendKind::parse(name)
                .unwrap_or_else(|| panic!("unknown backend {name:?} (mpi|lci|lci-direct)")),
        );
    }
    None
}

/// Parse a `--name N` / `--name=N` numeric flag.
pub fn num_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let eq = format!("{name}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == name {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .as_str()
        } else if let Some(v) = a.strip_prefix(&eq) {
            v
        } else {
            continue;
        };
        return Some(
            v.parse()
                .unwrap_or_else(|e| panic!("{name} {v:?} is not a number: {e}")),
        );
    }
    None
}

/// Message-layer tuning knobs shared by the examples and harnesses:
/// `--batch-bytes N`, `--batch-window-ns N`, `--multicast-k K`. Parsed by
/// [`comm_tuning_args`]; overlaid on a configuration with
/// [`CommTuning::apply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommTuning {
    /// AM-batch byte threshold (flush a destination's buffer at this many
    /// bytes; `None`/0 falls back to the engine's aggregation cap).
    pub batch_bytes: Option<usize>,
    /// AM-batch virtual-time window in ns. Zero (or absent, with no
    /// `--batch-bytes` either) keeps batching off: every submission
    /// flushes immediately, the seed behavior.
    pub batch_window_ns: Option<u64>,
    /// Multicast tree arity for wide activations; enables tree
    /// announcements (`bcast_tree_min = 2`) when the config has none.
    pub multicast_k: Option<usize>,
    /// `--adaptive`: run the online per-destination controller
    /// ([`amt_comm::TuneConfig`]) — AIMD adaptation of the eager-put
    /// ceiling, batching window, and GET window during the run.
    pub adaptive: bool,
    /// `--tuned <file>`: best-found knobs from an `--autotune-out` sweep
    /// (`amtlc-tune-v1`), applied before any explicit knob flags.
    pub tuned: Option<amt_core::TuneProfile>,
}

/// Parse the [`CommTuning`] flags from harness/example arguments,
/// validating eagerly: `--multicast-k` below 2 cannot form a tree and is
/// rejected here rather than at cluster construction.
///
/// `--tuned` together with `--cost-model` is legal — the explicit cost
/// model's charges win, the profile only sets knobs — but when the
/// profile was searched under *different* charges the knobs are stale
/// evidence, so that combination warns on stderr instead of silently
/// proceeding.
pub fn comm_tuning_args(args: &[String]) -> CommTuning {
    let t = CommTuning {
        batch_bytes: num_flag(args, "--batch-bytes"),
        batch_window_ns: num_flag(args, "--batch-window-ns"),
        multicast_k: num_flag(args, "--multicast-k"),
        adaptive: args.iter().any(|a| a == "--adaptive"),
        tuned: tuned_arg(args),
    };
    if let Some(k) = t.multicast_k {
        assert!(k >= 2, "--multicast-k must be at least 2 (got {k})");
    }
    let explicit = path_flag(args, "--cost-model").map(|p| p.display().to_string());
    if let Some(warning) = t.cost_model_warning(explicit.as_deref()) {
        eprintln!("warning: {warning}");
    }
    t
}

/// Parse the `--tuned <file>` / `--tuned=<file>` flag: load an
/// `amtlc-tune-v1` profile (written by the autotune sweep's
/// `--autotune-out`). Panics loudly on a missing or malformed file.
pub fn tuned_arg(args: &[String]) -> Option<amt_core::TuneProfile> {
    let path = path_flag(args, "--tuned")?;
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--tuned {}: {e}", path.display()));
    Some(
        amt_core::TuneProfile::from_json(&text)
            .unwrap_or_else(|e| panic!("--tuned {}: {e}", path.display())),
    )
}

impl CommTuning {
    /// Whether any knob was given (callers print the active tuning once).
    pub fn is_default(&self) -> bool {
        *self == CommTuning::default()
    }

    /// Delegate to [`amt_core::TuneProfile::cost_model_conflict`] for the
    /// loaded profile (if any): the warning to print when an explicit
    /// `--cost-model` overrides the charges the profile was searched under.
    pub fn cost_model_warning(&self, explicit_cost_model: Option<&str>) -> Option<String> {
        self.tuned
            .as_ref()
            .and_then(|p| p.cost_model_conflict(explicit_cost_model))
    }

    /// Overlay the present knobs onto `cfg`. The `--tuned` profile goes
    /// first, then explicit flags override it. A `--batch-bytes` without a
    /// window gets a 1 µs default window so the threshold can act at all;
    /// an explicit `--batch-window-ns 0` keeps batching off.
    pub fn apply(&self, cfg: &mut ClusterConfig) {
        if let Some(profile) = &self.tuned {
            profile.apply(cfg);
        }
        if self.batch_bytes.is_some() || self.batch_window_ns.is_some() {
            let window = self
                .batch_window_ns
                .unwrap_or(if self.batch_bytes.is_some() { 1_000 } else { 0 });
            cfg.engine = cfg
                .engine
                .clone()
                .with_batching(window, self.batch_bytes.unwrap_or(0));
        }
        if let Some(k) = self.multicast_k {
            cfg.multicast_k = Some(k);
            if cfg.bcast_tree_min.is_none() {
                cfg.bcast_tree_min = Some(2);
            }
        }
        if self.adaptive {
            cfg.engine.tune.enabled = true;
        }
    }

    /// One-line summary of the active knobs, for example banners.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(w) = self.batch_window_ns {
            parts.push(format!("batch window {w} ns"));
        }
        if let Some(b) = self.batch_bytes {
            parts.push(format!("batch threshold {b} B"));
        }
        if let Some(k) = self.multicast_k {
            parts.push(format!("multicast {k}-ary trees"));
        }
        if let Some(p) = &self.tuned {
            parts.push(format!(
                "tuned profile (eager {} B, window {} ns, GET window {})",
                p.eager_put_max, p.batch_window_ns, p.get_window
            ));
        }
        if self.adaptive {
            parts.push("adaptive controller".to_string());
        }
        parts.join(", ")
    }
}

/// Granularities of Fig. 2/3: 8 KiB → 8 MiB in √2 steps (the paper's
/// 90.5 KiB / 45.25 KiB points come from these half-power steps).
pub fn granularities(min_bytes: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut exact: f64 = 8.0 * 1024.0;
    while exact <= 8.0 * 1024.0 * 1024.0 + 1.0 {
        let g = exact.round() as usize;
        if g >= min_bytes {
            out.push(g);
        }
        exact *= std::f64::consts::SQRT_2;
    }
    out
}

/// Human-readable size.
pub fn fmt_size(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} KiB", b / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_series_matches_paper_points() {
        let g = granularities(8 * 1024);
        assert_eq!(g.first(), Some(&8192));
        assert_eq!(g.last(), Some(&(8 * 1024 * 1024)));
        // The √2 ladder contains the quoted 90.5 KiB and 45.25 KiB points.
        assert!(g.iter().any(|&x| (x as f64 - 90.5 * 1024.0).abs() < 512.0));
        assert!(g.iter().any(|&x| (x as f64 - 45.25 * 1024.0).abs() < 512.0));
        assert_eq!(g.len(), 21);
    }

    #[test]
    fn backend_arg_parses_both_flag_forms() {
        use amt_comm::BackendKind;
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(backend_arg(&args(&["--full"])), None);
        assert_eq!(
            backend_arg(&args(&["--backend", "lci-direct"])),
            Some(BackendKind::LciDirect)
        );
        assert_eq!(
            backend_arg(&args(&["--full", "--backend=mpi"])),
            Some(BackendKind::Mpi)
        );
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(8192), "8.00 KiB");
        assert_eq!(fmt_size(8 * 1024 * 1024), "8.00 MiB");
    }

    #[test]
    fn jobs_arg_parses_and_defaults() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_arg(&args(&["--full"])), 1);
        assert_eq!(jobs_arg(&args(&["--jobs", "4"])), 4);
        assert_eq!(jobs_arg(&args(&["--jobs=7", "--full"])), 7);
        assert!(jobs_arg(&args(&["--jobs", "0"])) >= 1);
    }

    #[test]
    fn threads_arg_parses_and_defaults_to_all_cores() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(threads_arg(&args(&["--full"])) >= 1);
        assert_eq!(threads_arg(&args(&["--threads", "4"])), 4);
        assert_eq!(threads_arg(&args(&["--threads=2", "--full"])), 2);
        assert!(threads_arg(&args(&["--threads", "0"])) >= 1);
        // The Option form distinguishes "absent" from "0 = all cores".
        assert_eq!(threads_arg_opt(&args(&["--full"])), None);
        assert_eq!(threads_arg_opt(&args(&["--threads", "0"])), Some(0));
        assert_eq!(threads_arg_opt(&args(&["--threads=3"])), Some(3));
    }

    #[test]
    fn cost_model_arg_round_trips_a_profile_file() {
        use amt_core::{CalibrationProfile, CostSummary};
        let mut p = CalibrationProfile {
            threads: 2,
            tasks: 4,
            ..Default::default()
        };
        p.classes.insert(
            "gemm".into(),
            CostSummary {
                count: 4,
                median_ns: 123,
                mean_ns: 130,
            },
        );
        let dir = std::env::temp_dir().join("amtlc-cost-model-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("profile.json");
        std::fs::write(&path, p.to_json()).expect("write profile");
        let args = vec![format!("--cost-model={}", path.display())];
        let loaded = cost_model_arg(&args).expect("flag present");
        assert_eq!(loaded, p);
        assert_eq!(cost_model_arg(&["--full".to_string()]), None);
    }

    #[test]
    fn run_indexed_preserves_order_at_any_width() {
        let sequential: Vec<usize> = run_indexed(20, 1, |i| i * i);
        for jobs in [2, 5, 8, 32] {
            assert_eq!(run_indexed(20, jobs, |i| i * i), sequential);
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_sweep_maps_items_in_order() {
        let items = ["a", "bb", "ccc"];
        assert_eq!(run_sweep(&items, 8, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn adaptive_sweep_points_are_byte_identical_at_any_jobs_width() {
        // A self-tuning run inside the parallel sweep runner must produce
        // the same RunReport digest at --jobs 1, 2 and 8: the controller is
        // virtual-time keyed and node-local, so host-thread scheduling can
        // never leak into its decisions.
        use amt_core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc};
        let point = |_i: usize| {
            let mut cfg = ClusterConfig {
                nodes: 2,
                workers_per_node: 2,
                mode: ExecMode::CostOnly,
                ..Default::default()
            };
            cfg.engine.tune.enabled = true;
            cfg.engine.tune.epoch_ns = 20_000;
            let mut g = GraphBuilder::new(2);
            for r in 0..10u64 {
                let mut d = TaskDesc::new("p").on_node(0).flops(1e4).write(2 * r, 6_000);
                if r > 0 {
                    d = d.read_key(2 * r - 1);
                }
                g.insert(d);
                g.insert(
                    TaskDesc::new("c")
                        .on_node(1)
                        .flops(1e4)
                        .read_key(2 * r)
                        .write(2 * r + 1, 0),
                );
            }
            let report = Cluster::new(cfg).execute(g.build());
            assert!(report.complete());
            report.to_json()
        };
        let sequential = run_indexed(3, 1, point);
        for jobs in [2, 8] {
            assert_eq!(run_indexed(3, jobs, point), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn comm_tuning_parses_and_applies() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let t = comm_tuning_args(&args(&[
            "--batch-window-ns",
            "5000",
            "--batch-bytes=4096",
            "--multicast-k",
            "4",
        ]));
        assert_eq!(t.batch_window_ns, Some(5_000));
        assert_eq!(t.batch_bytes, Some(4096));
        assert_eq!(t.multicast_k, Some(4));
        assert!(!t.is_default());
        let mut cfg = ClusterConfig::default();
        t.apply(&mut cfg);
        assert_eq!(cfg.engine.batch_window_ns, 5_000);
        assert_eq!(cfg.engine.batch_bytes, 4096);
        assert_eq!(cfg.multicast_k, Some(4));
        assert_eq!(cfg.bcast_tree_min, Some(2));

        // No flags: the configuration stays at seed defaults.
        let mut cfg = ClusterConfig::default();
        let none = comm_tuning_args(&args(&["--full"]));
        assert!(none.is_default());
        none.apply(&mut cfg);
        assert_eq!(cfg.engine.batch_window_ns, 0);
        assert_eq!(cfg.multicast_k, None);
        assert_eq!(cfg.bcast_tree_min, None);

        // A byte threshold alone gets the 1 µs default window; an explicit
        // zero window stays off.
        let mut cfg = ClusterConfig::default();
        comm_tuning_args(&args(&["--batch-bytes", "512"])).apply(&mut cfg);
        assert_eq!(cfg.engine.batch_window_ns, 1_000);
        assert_eq!(cfg.engine.batch_bytes, 512);
        let mut cfg = ClusterConfig::default();
        comm_tuning_args(&args(&["--batch-window-ns=0", "--batch-bytes=512"])).apply(&mut cfg);
        assert_eq!(cfg.engine.batch_window_ns, 0);
    }

    #[test]
    #[should_panic(expected = "multicast-k")]
    fn comm_tuning_rejects_unary_tree() {
        comm_tuning_args(&["--multicast-k=1".to_string()]);
    }

    #[test]
    fn adaptive_and_tuned_flags_compose() {
        use amt_core::TuneProfile;
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();

        // --adaptive alone turns the online controller on.
        let t = comm_tuning_args(&args(&["--adaptive"]));
        assert!(t.adaptive && !t.is_default());
        let mut cfg = ClusterConfig::default();
        t.apply(&mut cfg);
        assert!(cfg.engine.tune.enabled);

        // --tuned loads a profile and applies its knobs; explicit knob
        // flags still win over the profile.
        let profile = TuneProfile {
            eager_put_max: 8192,
            batch_window_ns: 150_000,
            get_window: 128,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("amtlc-tuned-flag-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("tune.json");
        std::fs::write(&path, profile.to_json()).expect("write profile");
        let t = comm_tuning_args(&args(&[&format!("--tuned={}", path.display())]));
        assert_eq!(t.tuned.as_ref(), Some(&profile));
        let mut cfg = ClusterConfig::default();
        t.apply(&mut cfg);
        assert_eq!(cfg.engine.eager_put_max, 8192);
        assert_eq!(cfg.engine.batch_window_ns, 150_000);
        assert_eq!(cfg.get_window, 128);
        assert!(!cfg.engine.tune.enabled, "profile had adaptive off");
        let mut cfg = ClusterConfig::default();
        let t = comm_tuning_args(&args(&[
            &format!("--tuned={}", path.display()),
            "--batch-window-ns=9000",
        ]));
        t.apply(&mut cfg);
        assert_eq!(cfg.engine.batch_window_ns, 9_000, "explicit flag wins");

        // --cost-model precedence: same tag is quiet, a different tag
        // (charges the sweep never saw) warns instead of silently drifting.
        assert!(t.cost_model_warning(None).is_none());
        assert!(t.cost_model_warning(Some("default")).is_none());
        let warn = t
            .cost_model_warning(Some("calib/other.json"))
            .expect("mismatched charges warn");
        assert!(warn.contains("overrides"), "{warn}");
    }
}
