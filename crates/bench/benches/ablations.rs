//! Ablation benches for the design choices DESIGN.md §7 calls out, run on
//! communication-bound workloads so the knobs actually bind:
//!
//! 1. ACTIVATE aggregation on/off (fine-grained ping-pong) — §4.3 duty #1.
//! 2. The MPI backend's 30-concurrent-transfer cap — §4.2.2 trade-off.
//! 3. LCI's dedicated progress thread vs sharing the communication core —
//!    undoing §5.3.1.
//! 4. The LCI eager-put-in-handshake optimization — §5.3.3.
//! 5. Fabric chunk size (model robustness).
//! 6. Multithreaded ACTIVATE (§6.4.3) on the TLR workload.
//!
//! Each ablation's points are independent simulations, swept across
//! `--jobs N` worker threads; rows always print in parameter order.

use amt_bench::pingpong::{run_pingpong, run_pingpong_cluster, PingPongCfg};
use amt_bench::table::{banner, cell, header, row};
use amt_bench::tlrrun::{run_tlr, TlrRunCfg};
use amt_bench::{harness_args, jobs_arg, run_sweep, ObsSink};
use amt_comm::{BackendKind, EngineConfig};
use amt_core::{ClusterConfig, ExecMode};
use amt_netmodel::FabricConfig;
use amt_tlr::{TlrCholesky, TlrProblem};

fn cluster_cfg(backend: BackendKind) -> ClusterConfig {
    ClusterConfig {
        mode: ExecMode::CostOnly,
        ..ClusterConfig::expanse(backend, 2)
    }
}

fn main() {
    let args = harness_args();
    ObsSink::install(&args);
    let jobs = jobs_arg(&args);

    banner("Ablation 1: ACTIVATE aggregation (ping-pong, 16 KiB fragments, Gbit/s)");
    header(&[("backend", 9), ("aggregated", 11), ("disabled", 9)]);
    let backends = [BackendKind::Lci, BackendKind::Mpi];
    let rows1 = run_sweep(&backends, jobs, |&backend| {
        let cfg = PingPongCfg::bandwidth(16 * 1024, 1, true, 4);
        let on = run_pingpong(backend, &cfg).gbit_per_s;
        let mut ccfg = cluster_cfg(backend);
        ccfg.engine.agg_max_bytes = 0;
        let off = run_pingpong_cluster(&cfg, ccfg).gbit_per_s;
        (on, off)
    });
    for (backend, (on, off)) in backends.iter().zip(rows1) {
        row(&[
            cell(format!("{backend:?}"), 9),
            cell(format!("{on:.1}"), 11),
            cell(format!("{off:.1}"), 9),
        ]);
    }
    println!();
    println!("without aggregation the MPI backend's five persistent receives per tag are");
    println!("overrun; the unexpected queue grows and matching cost spirals (§4.3).");

    banner("Ablation 2: MPI concurrent-transfer cap (ping-pong 128 KiB, Gbit/s; paper: 30)");
    header(&[("cap", 6), ("bandwidth", 10)]);
    let caps = [5usize, 30, 120, 1000];
    let bws = run_sweep(&caps, jobs, |&cap| {
        let cfg = PingPongCfg::bandwidth(128 * 1024, 1, true, 4);
        let mut ccfg = cluster_cfg(BackendKind::Mpi);
        ccfg.engine.max_concurrent_transfers = cap;
        run_pingpong_cluster(&cfg, ccfg).gbit_per_s
    });
    for (cap, bw) in caps.iter().zip(bws) {
        row(&[cell(format!("{cap}"), 6), cell(format!("{bw:.1}"), 10)]);
    }

    banner("Ablation 3: LCI progress thread placement (ping-pong, Gbit/s)");
    header(&[("granularity", 12), ("dedicated", 10), ("shared", 8)]);
    let grans = [16usize, 64, 256];
    let rows3 = run_sweep(&grans, jobs, |&kib| {
        let cfg = PingPongCfg::bandwidth(kib * 1024, 1, true, 4);
        let dedicated = run_pingpong(BackendKind::Lci, &cfg).gbit_per_s;
        let mut ccfg = cluster_cfg(BackendKind::Lci);
        ccfg.engine.lci_shared_progress = true;
        let shared = run_pingpong_cluster(&cfg, ccfg).gbit_per_s;
        (dedicated, shared)
    });
    for (kib, (dedicated, shared)) in grans.iter().zip(rows3) {
        row(&[
            cell(format!("{kib} KiB"), 12),
            cell(format!("{dedicated:.1}"), 10),
            cell(format!("{shared:.1}"), 8),
        ]);
    }

    banner("Ablation 4: LCI eager put in handshake (ping-pong 2 KiB fragments, Gbit/s)");
    header(&[("eager max", 10), ("bandwidth", 10)]);
    let eager = [4096usize, 0];
    let bws4 = run_sweep(&eager, jobs, |&max| {
        let cfg = PingPongCfg {
            frag_bytes: 2048,
            window: 8192,
            streams: 1,
            iters: 4,
            sync: true,
            fma_per_elem: 0.0,
        };
        let mut ccfg = cluster_cfg(BackendKind::Lci);
        ccfg.engine.eager_put_max = max;
        run_pingpong_cluster(&cfg, ccfg).gbit_per_s
    });
    for (max, bw) in eager.iter().zip(bws4) {
        row(&[cell(format!("{max}"), 10), cell(format!("{bw:.2}"), 10)]);
    }

    banner("Ablation 5: fabric chunk size (ping-pong 256 KiB, LCI, Gbit/s; default 64 KiB)");
    header(&[("chunk KiB", 10), ("bandwidth", 10)]);
    let chunks = [16usize, 64, 256];
    let bws5 = run_sweep(&chunks, jobs, |&chunk| {
        let cfg = PingPongCfg::bandwidth(256 * 1024, 1, true, 4);
        let mut ccfg = cluster_cfg(BackendKind::Lci);
        ccfg.fabric = FabricConfig {
            chunk_bytes: chunk * 1024,
            ..FabricConfig::expanse(2)
        };
        run_pingpong_cluster(&cfg, ccfg).gbit_per_s
    });
    for (chunk, bw) in chunks.iter().zip(bws5) {
        row(&[cell(format!("{chunk}"), 10), cell(format!("{bw:.1}"), 10)]);
    }

    banner("Ablation 6: §7 direct LCI put vs handshake emulation (ping-pong, Gbit/s)");
    header(&[
        ("granularity", 12),
        ("handshake", 10),
        ("direct put", 11),
        ("delta", 7),
    ]);
    let grans6 = [8usize, 16, 64, 256];
    let rows6 = run_sweep(&grans6, jobs, |&kib| {
        let cfg = PingPongCfg::bandwidth(kib * 1024, 1, true, 4);
        let hs = run_pingpong(BackendKind::Lci, &cfg).gbit_per_s;
        let direct = run_pingpong(BackendKind::LciDirect, &cfg).gbit_per_s;
        (hs, direct)
    });
    for (kib, (hs, direct)) in grans6.iter().zip(rows6) {
        row(&[
            cell(format!("{kib} KiB"), 12),
            cell(format!("{hs:.1}"), 10),
            cell(format!("{direct:.1}"), 11),
            cell(format!("{:+.0}%", (direct / hs - 1.0) * 100.0), 7),
        ]);
    }
    println!();
    println!("direct put removes the RTR round-trip from every rendezvous transfer, so the");
    println!("saving is a fixed per-fragment latency: large at small granularity, washed");
    println!("out once wire time dominates (§7).");

    banner("Ablation 7: §7 multiple LCI progress threads (ping-pong 16 KiB, Gbit/s)");
    header(&[("threads", 8), ("bandwidth", 10)]);
    let threads = [1usize, 2, 4];
    let bws7 = run_sweep(&threads, jobs, |&t| {
        let cfg = PingPongCfg::bandwidth(16 * 1024, 2, true, 4);
        let mut ccfg = cluster_cfg(BackendKind::Lci);
        ccfg.engine.lci_progress_threads = t;
        run_pingpong_cluster(&cfg, ccfg).gbit_per_s
    });
    for (t, bw) in threads.iter().zip(bws7) {
        row(&[cell(format!("{t}"), 8), cell(format!("{bw:.1}"), 10)]);
    }

    banner("Ablation 8: binomial multicast tree for wide broadcasts (TLR, 16 nodes)");
    header(&[("bcast", 8), ("tts s", 8), ("ctl-lat us", 11)]);
    let trees = [("star", None), ("tree>=4", Some(4usize))];
    let rows8 = run_sweep(&trees, jobs, |&(_, tree)| {
        let problem = TlrProblem::new(72_000, 1800);
        let (_, graph) = TlrCholesky::build_cost_only(problem, 16);
        let mut ccfg = ClusterConfig {
            mode: ExecMode::CostOnly,
            get_window_bytes: 2 << 20,
            bcast_tree_min: tree,
            ..ClusterConfig::expanse(BackendKind::Lci, 16)
        };
        ccfg.engine.agg_max_bytes = 8192;
        let mut cluster = amt_core::Cluster::new(ccfg);
        let r = cluster.execute(graph);
        assert!(r.complete());
        (r.makespan.as_secs_f64(), r.request_latency_us.mean())
    });
    for (&(label, _), (tts, lat)) in trees.iter().zip(rows8) {
        row(&[
            cell(label, 8),
            cell(format!("{tts:.3}"), 8),
            cell(format!("{lat:.1}"), 11),
        ]);
    }

    banner("Ablation 9: multithreaded ACTIVATE (TLR ctl latency us, 8 nodes, ts=1200)");
    header(&[("backend", 9), ("funneled", 9), ("multithreaded", 14)]);
    let points9: Vec<(BackendKind, bool)> = [BackendKind::Lci, BackendKind::Mpi]
        .into_iter()
        .flat_map(|b| [(b, false), (b, true)])
        .collect();
    let rows9 = run_sweep(&points9, jobs, |&(backend, mt)| {
        run_tlr(&TlrRunCfg {
            backend,
            nodes: 8,
            n: 72_000,
            tile_size: 1200,
            multithread_am: mt,
            tuning: Default::default(),
        })
        .req_us
    });
    for pair in points9.iter().zip(&rows9).collect::<Vec<_>>().chunks(2) {
        let ((backend, _), funneled) = pair[0];
        let (_, multithreaded) = pair[1];
        row(&[
            cell(format!("{backend:?}"), 9),
            cell(format!("{funneled:.1}"), 9),
            cell(format!("{multithreaded:.1}"), 14),
        ]);
    }
    let _ = EngineConfig::default();
}
