//! Scheduler hot-path budget benchmark → `BENCH_sched.json`.
//!
//! Three *deterministic* metric families under a counting
//! `#[global_allocator]` (the simulator is single-threaded, so allocation
//! counts repeat exactly; only the tasks/sec column is wall-clock):
//!
//! * **fine_grained_dag** — many short chains of tiny tasks, mostly local
//!   with occasional cross-chain remote reads: per-task runtime overhead
//!   with the communication engine almost idle. Reported for the dense
//!   scheduler datapath and for `reference_sched` (the seed's
//!   HashMap/BinaryHeap structures); both runs must produce byte-identical
//!   `RunReport` JSON.
//!
//! * **tlr_cholesky** — the paper's TLR Cholesky graph in CostOnly mode:
//!   the same columns on a communication-heavy workload.
//!
//! * **windowed_memory** — a large TLR tile count executed fully unrolled
//!   vs through `execute_windowed`; reports the peak-live-bytes
//!   (deterministic peak-RSS proxy) of graph construction + execution for
//!   both, and the ratio that bounds how much further fig4 can scale.
//!
//! Flags: `--quick` (smoke sizes for CI), `--out <path>`.

use std::time::Instant;

use amt_bench::alloc_count::{
    peak_live_bytes, reset_peak_live_bytes, AllocSnapshot, CountingAlloc,
};
use amt_bench::harness_args;
use amt_comm::BackendKind;
use amt_core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc, TaskGraph};
use amt_tlr::{TlrCholesky, TlrCholeskySource, TlrProblem};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn cluster(nodes: usize, workers: usize, reference: bool) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        workers_per_node: workers,
        backend: BackendKind::Lci,
        mode: ExecMode::CostOnly,
        reference_sched: reference,
        ..Default::default()
    })
}

/// `chains` chains of `len` tiny tasks each, chain `c` pinned to node
/// `c % nodes`; every 16th step also reads the neighbour chain (an
/// occasional remote flow), priorities cycle through 8 levels. The
/// scheduler, not the network, is the bottleneck.
fn fine_dag(nodes: usize, chains: usize, len: usize) -> TaskGraph {
    let mut g = GraphBuilder::new(nodes);
    for c in 0..chains {
        g.data(c as u64, 64, c % nodes, None);
    }
    for step in 0..len {
        for c in 0..chains {
            let mut d = TaskDesc::new("t")
                .on_node(c % nodes)
                .flops(1e4)
                .priority(((step + c) % 8) as i64)
                .read_key(c as u64);
            if step % 16 == 0 && chains > 1 {
                let nb = (c + 1) % chains;
                if nb % nodes != c % nodes {
                    d = d.read_key(nb as u64);
                }
            }
            g.insert(d.write(c as u64, 64));
        }
    }
    g.build()
}

struct Columns {
    tasks: u64,
    tasks_per_sec: f64,
    allocs_per_task: f64,
    report_json: String,
}

/// Warm-up execute on a fresh graph, then a measured execute: wall-clock
/// tasks/sec plus deterministic allocations/task for the execution phase
/// (graph construction is outside the measured region).
fn run_scenario(mut make_graph: impl FnMut() -> TaskGraph, mut cluster: Cluster) -> Columns {
    let warm = make_graph();
    let r = cluster.execute(warm);
    assert!(r.complete(), "warm-up incomplete");
    let graph = make_graph();
    let tasks = graph.task_count() as u64;
    let snap = AllocSnapshot::now();
    let t0 = Instant::now();
    let report = cluster.execute(graph);
    let dt = t0.elapsed().as_secs_f64();
    let d = snap.since();
    assert!(report.complete(), "measured run incomplete");
    Columns {
        tasks,
        tasks_per_sec: tasks as f64 / dt,
        allocs_per_task: d.allocs as f64 / tasks as f64,
        report_json: report.to_json(),
    }
}

/// Peak live heap bytes over graph construction + execution, full-unroll
/// vs windowed, on the same problem.
fn windowed_memory(nt: u64, window: usize) -> (u64, u64, u64) {
    let ts = 1200;
    let problem = TlrProblem::new(nt as usize * ts, ts);
    let nodes = 4;

    let mut full = cluster(nodes, 16, false);
    reset_peak_live_bytes();
    let base = peak_live_bytes();
    let (_, graph) = TlrCholesky::build_cost_only(problem.clone(), nodes);
    let tasks = graph.task_count() as u64;
    let r = full.execute(graph);
    assert!(r.complete(), "full unroll incomplete");
    let full_peak = peak_live_bytes() - base;
    drop(full);

    let mut win = cluster(nodes, 16, false);
    reset_peak_live_bytes();
    let base = peak_live_bytes();
    let source = TlrCholeskySource::cost_only(problem, nodes);
    let r = win.execute_windowed(Box::new(source), window);
    assert!(r.complete(), "windowed incomplete");
    assert_eq!(r.tasks_total, tasks, "windowed produced a different graph");
    let win_peak = peak_live_bytes() - base;
    (tasks, full_peak, win_peak)
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = {
        let mut it = args.iter();
        let mut path = String::from("BENCH_sched.json");
        while let Some(a) = it.next() {
            if a == "--out" {
                path = it.next().expect("--out requires a value").clone();
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = v.to_string();
            }
        }
        path
    };

    let chain_len = if quick { 50 } else { 250 };
    let tlr_nt = if quick { 16 } else { 32 };
    let mem_nt = if quick { 48 } else { 96 };
    let mem_window = 2048;

    println!("== per-task scheduler overhead: reference (seed structures) vs dense ==");
    let mut scenarios: Vec<(&str, Columns, Columns)> = Vec::new();
    for name in ["fine_grained_dag", "tlr_cholesky"] {
        let run = |reference: bool| match name {
            "fine_grained_dag" => {
                run_scenario(|| fine_dag(4, 64, chain_len), cluster(4, 8, reference))
            }
            _ => {
                let ts = 1200;
                run_scenario(
                    || TlrCholesky::build_cost_only(TlrProblem::new(tlr_nt * ts, ts), 4).1,
                    cluster(4, 16, reference),
                )
            }
        };
        let reference = run(true);
        let dense = run(false);
        assert_eq!(
            reference.report_json, dense.report_json,
            "{name}: reference and dense schedulers diverged"
        );
        println!(
            "{:<17} {:>7} tasks   ref {:>9.0} tasks/s {:>6.2} allocs/task   dense {:>9.0} tasks/s {:>6.2} allocs/task",
            name, reference.tasks, reference.tasks_per_sec, reference.allocs_per_task,
            dense.tasks_per_sec, dense.allocs_per_task
        );
        scenarios.push((name, reference, dense));
    }

    println!("== peak live bytes: full unroll vs windowed (window {mem_window}) ==");
    let (mem_tasks, full_peak, win_peak) = windowed_memory(mem_nt, mem_window);
    let ratio = full_peak as f64 / win_peak.max(1) as f64;
    println!(
        "tlr nt={mem_nt} ({mem_tasks} tasks): full {:.1} MiB   windowed {:.1} MiB   ratio {ratio:.1}x",
        full_peak as f64 / (1 << 20) as f64,
        win_peak as f64 / (1 << 20) as f64,
    );

    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-sched-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"throughput\": {\n");
    for (i, (name, r, d)) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"tasks\": {}, \"reference\": {{\"tasks_per_sec\": {:.0}, \"allocs_per_task\": {:.3}}}, \"dense\": {{\"tasks_per_sec\": {:.0}, \"allocs_per_task\": {:.3}}}}}{}\n",
            r.tasks,
            r.tasks_per_sec,
            r.allocs_per_task,
            d.tasks_per_sec,
            d.allocs_per_task,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"windowed_memory\": {{\"tile_count\": {mem_nt}, \"tasks\": {mem_tasks}, \"window\": {mem_window}, \"full_unroll_peak_bytes\": {full_peak}, \"windowed_peak_bytes\": {win_peak}, \"ratio\": {ratio:.2}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_sched.json");
    println!("wrote {out_path}");
}
