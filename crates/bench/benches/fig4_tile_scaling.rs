//! Figure 4: HiCMA TLR Cholesky on 16 nodes, scaling the tile size from
//! 6000×6000 down to 1200×1200 (st-2d-sqexp, maxrank 150, accuracy 1e-8,
//! band size 1, two-flow algorithm).
//!
//! * Fig. 4a — time-to-solution per tile size, LCI vs Open MPI.
//! * Fig. 4b — mean end-to-end communication latency (ACTIVATE send → data
//!   arrival), including the multithreaded-ACTIVATE variants (§6.4.3).
//!
//! Default N is scaled to 72 000 (the paper's 360 000 with `-- --full`);
//! the tile-size axis is identical.

use amt_bench::table::{banner, cell, header, row};
use amt_bench::tlrrun::{run_tlr, TlrRunCfg, N_FULL, N_SCALED, TILE_SIZES};
use amt_bench::{backend_arg, full_scale, harness_args, jobs_arg, run_sweep, ObsSink};
use amt_comm::BackendKind;

/// `-- --golden [--jobs N] [--islands K]`: run one fixed, scaled fig4
/// point on every backend and print the exact virtual-time results
/// (integer nanoseconds). verify.sh diffs this output against
/// `results/golden_fig4.txt` — at several `--jobs` settings and several
/// `--islands` counts — to prove engine changes alter no virtual-time
/// behaviour, that the sweep runner's parallelism cannot leak into
/// results, and that the island-parallel DES reproduces the monolithic
/// engine byte for byte.
fn golden_point(jobs: usize, islands: Option<usize>) {
    println!("golden fig4 point: N=24000 nodes=4 ts=3000 mt=false");
    let backends = [BackendKind::Lci, BackendKind::LciDirect, BackendKind::Mpi];
    let runs: Vec<_> = match islands {
        // Island-parallel DES path: same cluster configuration as
        // `run_tlr`, executed over `k` node islands. The printed lines
        // must match the monolithic golden file exactly.
        Some(k) => {
            use amt_core::{execute_islands, ClusterConfig, ExecMode};
            use amt_tlr::{TlrCholesky, TlrProblem};
            let nodes = 4;
            backends
                .iter()
                .map(|&backend| {
                    let cfg = ClusterConfig {
                        mode: ExecMode::CostOnly,
                        get_window_bytes: 2 << 20,
                        ..ClusterConfig::expanse(backend, nodes)
                    };
                    let problem = TlrProblem::new(24_000, 3000);
                    let report = execute_islands(&cfg, k, |g| {
                        TlrCholesky::build_cost_only_into(problem.clone(), nodes, g);
                    });
                    assert!(report.complete(), "island golden run incomplete");
                    let mean = |s: &amt_simnet::OnlineStats| {
                        if s.count() > 0 {
                            s.mean()
                        } else {
                            0.0
                        }
                    };
                    (
                        report.makespan.as_ns(),
                        report.tasks_executed,
                        mean(&report.e2e_latency_us),
                        mean(&report.msg_latency_us),
                        mean(&report.request_latency_us),
                    )
                })
                .collect()
        }
        None => {
            let cfgs: Vec<TlrRunCfg> = backends
                .iter()
                .map(|&backend| TlrRunCfg {
                    backend,
                    nodes: 4,
                    n: 24_000,
                    tile_size: 3000,
                    multithread_am: false,
                    tuning: Default::default(),
                })
                .collect();
            run_sweep(&cfgs, jobs, run_tlr)
                .into_iter()
                .map(|r| (r.makespan_ns, r.tasks, r.e2e_us, r.msg_us, r.req_us))
                .collect()
        }
    };
    for (backend, (makespan_ns, tasks, e2e_us, msg_us, req_us)) in backends.iter().zip(runs) {
        println!(
            "{backend} makespan_ns={makespan_ns} tasks={tasks} e2e_us={e2e_us:.6} msg_us={msg_us:.6} req_us={req_us:.6}"
        );
    }
}

fn main() {
    let args = harness_args();
    if args.iter().any(|a| a == "--golden") {
        golden_point(jobs_arg(&args), amt_bench::num_flag(&args, "--islands"));
        return;
    }
    ObsSink::install(&args);
    let full = full_scale(&args);
    let n = if full { N_FULL } else { N_SCALED };
    let nodes = 16;
    // The figure compares an LCI variant against the Open MPI baseline;
    // `--backend lci-direct` swaps the §7 direct-put backend into the LCI
    // series.
    let lci_kind = match backend_arg(&args) {
        None => BackendKind::Lci,
        Some(BackendKind::Mpi) => {
            panic!("fig4 always includes the MPI baseline; pass --backend lci|lci-direct")
        }
        Some(b) => b,
    };

    println!("TLR Cholesky st-2d-sqexp, N = {n}, {nodes} nodes, maxrank 150, acc 1e-8, band 1");
    println!("LCI series backend: {lci_kind}");

    // Every (tile, backend, mt) point is an independent simulation; sweep
    // them across `--jobs` workers and regroup in configuration order.
    let mut points = Vec::new();
    for &ts in &TILE_SIZES {
        for backend in [lci_kind, BackendKind::Mpi] {
            for mt in [false, true] {
                points.push(TlrRunCfg {
                    backend,
                    nodes,
                    n,
                    tile_size: ts,
                    multithread_am: mt,
                    tuning: Default::default(),
                });
            }
        }
    }
    let runs = run_sweep(&points, jobs_arg(&args), run_tlr);
    let mut results: Vec<(usize, Vec<(BackendKind, bool, _)>)> = Vec::new();
    for (cfg, r) in points.into_iter().zip(runs) {
        if results.last().map(|(ts, _)| *ts) != Some(cfg.tile_size) {
            results.push((cfg.tile_size, Vec::new()));
        }
        results
            .last_mut()
            .expect("pushed above")
            .1
            .push((cfg.backend, cfg.multithread_am, r));
    }

    banner("Figure 4a: time-to-solution (s)");
    header(&[
        ("tile", 6),
        ("LCI", 9),
        ("Open MPI", 9),
        ("LCI MT", 9),
        ("MPI MT", 9),
    ]);
    for (ts, per_ts) in &results {
        let find = |b: BackendKind, mt: bool| {
            per_ts
                .iter()
                .find(|(bb, mm, _)| *bb == b && *mm == mt)
                .map(|(_, _, r)| r)
                .expect("run present")
        };
        row(&[
            cell(format!("{ts}"), 6),
            cell(format!("{:.3}", find(lci_kind, false).tts_s), 9),
            cell(format!("{:.3}", find(BackendKind::Mpi, false).tts_s), 9),
            cell(format!("{:.3}", find(lci_kind, true).tts_s), 9),
            cell(format!("{:.3}", find(BackendKind::Mpi, true).tts_s), 9),
        ]);
    }

    banner("Figure 4b: mean communication latency (us)");
    println!("control-path latency = ACTIVATE send -> GET DATA arrival at owner (the paper's");
    println!("software-latency regime); e2e additionally includes the bulk transfer+queueing.");
    println!();
    header(&[
        ("tile", 6),
        ("LCI", 9),
        ("Open MPI", 9),
        ("LCI MT", 9),
        ("MPI MT", 9),
        ("LCI e2e", 9),
        ("MPI e2e", 9),
    ]);
    for (ts, per_ts) in &results {
        let find = |b: BackendKind, mt: bool| {
            per_ts
                .iter()
                .find(|(bb, mm, _)| *bb == b && *mm == mt)
                .map(|(_, _, r)| r)
                .expect("run present")
        };
        row(&[
            cell(format!("{ts}"), 6),
            cell(format!("{:.1}", find(lci_kind, false).req_us), 9),
            cell(format!("{:.1}", find(BackendKind::Mpi, false).req_us), 9),
            cell(format!("{:.1}", find(lci_kind, true).req_us), 9),
            cell(format!("{:.1}", find(BackendKind::Mpi, true).req_us), 9),
            cell(format!("{:.1}", find(lci_kind, false).e2e_us), 9),
            cell(format!("{:.1}", find(BackendKind::Mpi, false).e2e_us), 9),
        ]);
    }

    banner("§6.4 headline numbers");
    // Best tile per backend (funneled).
    let best = |b: BackendKind| {
        results
            .iter()
            .map(|(ts, per)| {
                let r = per
                    .iter()
                    .find(|(bb, mm, _)| *bb == b && !*mm)
                    .map(|(_, _, r)| r)
                    .expect("run present");
                (*ts, r.tts_s)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
    };
    let (lci_ts, lci_tts) = best(lci_kind);
    let (mpi_ts, mpi_tts) = best(BackendKind::Mpi);
    println!("best LCI: ts={lci_ts} tts={lci_tts:.3}s | best MPI: ts={mpi_ts} tts={mpi_tts:.3}s");
    println!(
        "LCI speedup over MPI at respective bests: {:.1}% (paper: up to 12%)",
        (mpi_tts / lci_tts - 1.0) * 100.0
    );
    // Latency reduction at every tile size.
    let mut max_red = 0.0f64;
    for (_, per) in &results {
        let lci = per
            .iter()
            .find(|(b, m, _)| *b == lci_kind && !m)
            .expect("lci")
            .2
            .req_us;
        let mpi = per
            .iter()
            .find(|(b, m, _)| *b == BackendKind::Mpi && !m)
            .expect("mpi")
            .2
            .req_us;
        if mpi > 0.0 {
            max_red = max_red.max(1.0 - lci / mpi);
        }
    }
    println!(
        "max LCI control-path latency reduction vs MPI: {:.0}% (paper: >50% end-to-end)",
        max_red * 100.0
    );
    // Multithreading effects at the smallest tile (paper: LCI −46% e2e
    // latency, −10% tts at ts=1200; MPI neutral or negative).
    let (ts0, per0) = &results[0];
    let g = |b: BackendKind, mt: bool| {
        per0.iter()
            .find(|(bb, mm, _)| *bb == b && *mm == mt)
            .map(|(_, _, r)| r)
            .expect("run present")
    };
    println!(
        "ts={ts0} LCI multithreaded ACTIVATE: ctl-latency {:+.0}%, tts {:+.1}% (paper: -46% e2e, -10% tts)",
        (g(lci_kind, true).req_us / g(lci_kind, false).req_us - 1.0) * 100.0,
        (g(lci_kind, true).tts_s / g(lci_kind, false).tts_s - 1.0) * 100.0,
    );
    println!(
        "ts={ts0} MPI multithreaded ACTIVATE: ctl-latency {:+.0}%, tts {:+.1}% (paper: ~neutral/negative)",
        (g(BackendKind::Mpi, true).req_us / g(BackendKind::Mpi, false).req_us - 1.0) * 100.0,
        (g(BackendKind::Mpi, true).tts_s / g(BackendKind::Mpi, false).tts_s - 1.0) * 100.0,
    );
}
