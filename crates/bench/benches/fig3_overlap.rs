//! Figure 3: computation/communication overlap with GEMM-like intensity.
//!
//! Each PINGPONG task executes `√(M/8)` FMA per 8-byte element of its
//! fragment (GEMM's N ops/element), total FLOPs held constant across
//! granularities, SYNC removed. As granularity shrinks the
//! computation-to-communication ratio falls: first parallelism-limited,
//! then compute-limited, finally network-limited — where the MPI backend
//! collapses and LCI keeps pace (the paper reports >2× at 128 KiB and an
//! order of magnitude at 32 KiB).
//!
//! "Roofline" assumes perfect overlap; "No Overlap" serializes compute and
//! communication. Both are printed analytically, as in the paper.

use amt_bench::pingpong::{run_pingpong, PingPongCfg};
use amt_bench::table::{banner, cell, header, row};
use amt_bench::{fmt_size, full_scale, granularities, harness_args, ObsSink};
use amt_comm::BackendKind;

fn main() {
    let args = harness_args();
    ObsSink::install(&args);
    let full = full_scale(&args);
    // Total FLOPs per measurement point. The full setting approaches the
    // paper's multi-second runs; the scaled one keeps task counts tractable
    // at the finest granularity.
    let total_flops = if full { 5e11 } else { 6e10 };
    let min = if full { 8 * 1024 } else { 16 * 1024 };
    let sizes = granularities(min);

    // Platform envelope.
    let workers = 2.0 * 126.0;
    let peak_tflops = workers * 36.0e9 / 1e12; // 36 GFLOP/s per worker → TFLOP/s
    let wire_bytes_per_s = 12.5e9; // one direction
                                   // Without synchronization consecutive iterations move opposite
                                   // directions concurrently, so the fabric sustains up to full duplex.
    let duplex = 2.0;

    banner("Figure 3: overlap with GEMM-like intensity (TFLOP/s)");
    header(&[
        ("granularity", 12),
        ("LCI", 9),
        ("Open MPI", 9),
        ("No Overlap", 11),
        ("Roofline", 9),
        ("tasks", 9),
    ]);
    for &n in &sizes {
        let cfg = PingPongCfg::overlap(n, total_flops);
        let flops_task = cfg.flops_per_task();
        let tasks = cfg.window * cfg.iters;
        // Parallelism bound: only `window` tasks exist per in-flight
        // iteration wave.
        let par_frac = (cfg.window as f64 / workers).min(1.0);
        let compute_tflops = peak_tflops * par_frac;
        // Both analytic curves from the same actual workload quantities.
        let actual_flops = flops_task * (cfg.window * cfg.iters) as f64;
        let t_compute = actual_flops / (compute_tflops * 1e12);
        let t_comm = cfg.bytes_moved() / (wire_bytes_per_s * duplex);
        let roofline = actual_flops / t_compute.max(t_comm) / 1e12;
        let no_overlap = actual_flops / (t_compute + t_comm) / 1e12;

        let lci = run_pingpong(BackendKind::Lci, &cfg).tflop_per_s;
        let mpi = run_pingpong(BackendKind::Mpi, &cfg).tflop_per_s;
        row(&[
            cell(fmt_size(n), 12),
            cell(format!("{lci:.3}"), 9),
            cell(format!("{mpi:.3}"), 9),
            cell(format!("{no_overlap:.3}"), 11),
            cell(format!("{roofline:.3}"), 9),
            cell(format!("{tasks}"), 9),
        ]);
    }
    println!();
    println!("headline ratios (paper: >2x at 128 KiB, ~10x at 32 KiB):");
    for &n in &[128 * 1024, 32 * 1024] {
        if n < min {
            continue;
        }
        let cfg = PingPongCfg::overlap(n, total_flops);
        let lci = run_pingpong(BackendKind::Lci, &cfg).tflop_per_s;
        let mpi = run_pingpong(BackendKind::Mpi, &cfg).tflop_per_s;
        println!("  {}: LCI/MPI = {:.2}x", fmt_size(n), lci / mpi);
    }
}
