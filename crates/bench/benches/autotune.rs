//! Offline autotune sweep → `BENCH_tune.json` (+ optional
//! `--autotune-out <file>` `amtlc-tune-v1` profile).
//!
//! The online controller (`--adaptive`) adapts knobs *during* a run; this
//! bench is the offline half of the loop: sweep the communication knob
//! space — eager-put ceiling × AM batching window × GET window, each with
//! and without the online controller — over the deterministic parallel
//! sweep runner, score every candidate, and emit the winner as a
//! byte-stable profile that `--tuned` loads back.
//!
//! Scoring, per candidate (all virtual-time, LCI backend, deterministic):
//!
//! * **bandwidth knee** — a Fig. 2-style synchronized ping-pong sweep
//!   over fragment sizes; the knee is the smallest fragment reaching half
//!   of the measured peak. Smaller is better (small fragments stop paying
//!   per-message control overhead sooner).
//! * **overlap fraction** — the Fig. 3 communication/computation overlap
//!   integrator on the wide-fan-out TLR Cholesky (`tlr_wide`, the
//!   `msg_rate` workload). Larger is better.
//!
//! The winner minimizes the knee, breaking ties on overlap. Alongside the
//! sweep, a **bimodal** regression scenario runs static defaults against
//! the online controller on a workload mixing ~6 KB payloads (rendezvous
//! under the static 4 KiB eager ceiling, eager once the controller raises
//! it) with large transfers: the controller must strictly win — verify.sh
//! gates on it, plus on adaptive ≥ static overlap on `tlr_wide`.
//!
//! Flags: `--quick` (CI sizes), `--out <path>` (default BENCH_tune.json),
//! `--autotune-out <path>` (write the winning `amtlc-tune-v1` profile;
//! re-read and checked against the winner before returning).

use amt_bench::pingpong::{run_pingpong_cluster, PingPongCfg};
use amt_bench::{harness_args, path_flag, run_indexed};
use amt_comm::BackendKind;
use amt_core::{
    Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc, TuneProfile, TUNE_COST_DEFAULT,
};
use amt_tlr::{TlrCholesky, TlrProblem};

/// Fragment-size axis of the knee sweep, 8 KiB → 8 MiB. The 12 KiB point
/// sits just under the adaptive eager ceiling, where threshold adaptation
/// is visible.
const KNEE_SIZES: [usize; 7] = [
    8 * 1024,
    12 * 1024,
    16 * 1024,
    32 * 1024,
    128 * 1024,
    1024 * 1024,
    8 * 1024 * 1024,
];
const KNEE_SIZES_QUICK: [usize; 5] = [8 * 1024, 12 * 1024, 32 * 1024, 128 * 1024, 8 * 1024 * 1024];

/// One scored sweep point.
struct Scored {
    profile: TuneProfile,
    knee_bytes: u64,
    overlap: f64,
    tlr_tts_s: f64,
}

/// Synchronized ping-pong bandwidth at each fragment size under this
/// candidate's knobs; returns the knee (smallest fragment ≥ half of peak).
fn knee_of(candidate: &TuneProfile, quick: bool) -> u64 {
    let sizes: &[usize] = if quick {
        &KNEE_SIZES_QUICK
    } else {
        &KNEE_SIZES
    };
    // Constant per-iteration volume across fragment sizes (the paper uses
    // 256 MiB; scaled down — the knee is a ratio, not an absolute).
    let vol: usize = if quick { 16 << 20 } else { 64 << 20 };
    let bw: Vec<f64> = sizes
        .iter()
        .map(|&n| {
            let pcfg = PingPongCfg {
                frag_bytes: n,
                window: (vol / n).max(1),
                streams: 1,
                iters: 4,
                sync: true,
                fma_per_elem: 0.0,
            };
            let mut ccfg = ClusterConfig {
                mode: ExecMode::CostOnly,
                ..ClusterConfig::expanse(BackendKind::Lci, 2)
            };
            candidate.apply(&mut ccfg);
            run_pingpong_cluster(&pcfg, ccfg).gbit_per_s
        })
        .collect();
    let peak = bw.iter().cloned().fold(0.0, f64::max);
    for (i, &b) in bw.iter().enumerate() {
        if b >= peak / 2.0 {
            return sizes[i] as u64;
        }
    }
    *sizes.last().expect("non-empty size axis") as u64
}

/// Wide-fan-out TLR Cholesky under this candidate's knobs; returns the
/// Fig. 3 overlap fraction and the time to solution.
fn overlap_of(candidate: &TuneProfile, quick: bool) -> (f64, f64) {
    let (nodes, n, ts) = if quick {
        (8usize, 24_000, 500)
    } else {
        (16usize, 48_000, 500)
    };
    let problem = TlrProblem::new(n, ts);
    let (_, graph) = TlrCholesky::build_cost_only(problem, nodes);
    let mut cfg = ClusterConfig {
        mode: ExecMode::CostOnly,
        get_window_bytes: 2 << 20,
        metrics: true,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    };
    candidate.apply(&mut cfg);
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute(graph);
    assert!(report.complete(), "tlr_wide incomplete under {candidate:?}");
    let m = cluster.metrics_report(&report);
    (m.overlap_fraction, report.makespan.as_secs_f64())
}

/// The bimodal-message-size regression workload: `rounds` waves of
/// `SMALL_PER_ROUND` ~6 KB payloads produced on node 0 and consumed on
/// node 1, each wave gated on the previous one by a zero-byte token
/// flowing back — so the smalls' put latency IS the critical path (the
/// wave is kept narrow: a wide wave hides the wire under the consumer's
/// serial ACTIVATE processing). Every `LARGE_EVERY` rounds a large
/// payload crosses the same link off-gate (drained by a task that writes
/// no token), keeping the wire-size histogram bimodal. The ~6 KB mode is
/// the interesting one: above the static 4 KiB eager ceiling, every
/// small pays the rendezvous RTS/RTR round trip; below the adaptive
/// ceiling once the controller converges, it rides eagerly inside the
/// handshake.
fn bimodal_graph(rounds: u64, large_bytes: usize) -> amt_core::TaskGraph {
    const SMALL_PER_ROUND: u64 = 2;
    const SMALL_BYTES: usize = 6_000;
    const LARGE_EVERY: u64 = 4;
    let stride = SMALL_PER_ROUND + 2;
    let small = |r: u64, s: u64| r * stride + s;
    let large = |r: u64| r * stride + SMALL_PER_ROUND;
    let token = |r: u64| r * stride + SMALL_PER_ROUND + 1;
    let mut g = GraphBuilder::new(2);
    for r in 0..rounds {
        for s in 0..SMALL_PER_ROUND {
            let mut d = TaskDesc::new("smallprod")
                .on_node(0)
                .flops(1e4)
                .write(small(r, s), SMALL_BYTES);
            if r > 0 {
                d = d.read_key(token(r - 1));
            }
            g.insert(d);
        }
        if r % LARGE_EVERY == 0 {
            let mut d = TaskDesc::new("largeprod")
                .on_node(0)
                .flops(1e5)
                .write(large(r), large_bytes);
            if r > 0 {
                d = d.read_key(token(r - 1));
            }
            g.insert(d);
            g.insert(
                TaskDesc::new("drain")
                    .on_node(1)
                    .flops(1e3)
                    .read_key(large(r)),
            );
        }
        let mut sync = TaskDesc::new("sync")
            .on_node(1)
            .flops(1e3)
            .write(token(r), 0);
        for s in 0..SMALL_PER_ROUND {
            sync = sync.read_key(small(r, s));
        }
        g.insert(sync);
    }
    g.build()
}

/// Run the bimodal workload; returns (tts_s, AM messages on the wire).
fn run_bimodal(adaptive: bool, quick: bool) -> (f64, u64) {
    let (rounds, large) = if quick {
        (96u64, 256 << 10)
    } else {
        (256u64, 1 << 20)
    };
    let mut cfg = ClusterConfig {
        mode: ExecMode::CostOnly,
        ..ClusterConfig::expanse(BackendKind::Lci, 2)
    };
    cfg.engine.tune.enabled = adaptive;
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute(bimodal_graph(rounds, large));
    assert!(report.complete(), "bimodal run incomplete");
    let msgs: u64 = report.engine_stats.iter().map(|s| s.am_sent.get()).sum();
    (report.makespan.as_secs_f64(), msgs)
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = amt_bench::jobs_arg(&args);
    let out_path = path_flag(&args, "--out")
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| "BENCH_tune.json".to_string());
    let tune_out = path_flag(&args, "--autotune-out");

    // Candidate grid. The static seed defaults (eager 4096, no batching,
    // GET window 512, controller off) are candidate 0 — the baseline every
    // relative number in the report is against.
    let eagers: &[u64] = if quick {
        &[4096, 12_032]
    } else {
        &[4096, 8192, 12_032]
    };
    let windows: &[u64] = &[0, 200_000];
    let get_windows: &[u64] = if quick { &[512] } else { &[128, 512] };
    let mut candidates = Vec::new();
    for &adaptive in &[false, true] {
        for &eager_put_max in eagers {
            for &batch_window_ns in windows {
                for &get_window in get_windows {
                    candidates.push(TuneProfile {
                        eager_put_max,
                        batch_window_ns,
                        get_window,
                        adaptive,
                        cost_model: TUNE_COST_DEFAULT.to_string(),
                        knee_bytes: 0,
                        overlap_millis: 0,
                        candidates: 0,
                    });
                }
            }
        }
    }
    println!(
        "== autotune: {} candidates (knee sweep + tlr_wide overlap), {} jobs ==",
        candidates.len(),
        jobs
    );

    let scored: Vec<Scored> = run_indexed(candidates.len(), jobs, |i| {
        let mut profile = candidates[i].clone();
        let knee_bytes = knee_of(&profile, quick);
        let (overlap, tlr_tts_s) = overlap_of(&profile, quick);
        profile.knee_bytes = knee_bytes;
        profile.overlap_millis = (overlap * 1000.0).round() as u64;
        profile.candidates = candidates.len() as u64;
        Scored {
            profile,
            knee_bytes,
            overlap,
            tlr_tts_s,
        }
    });
    for s in &scored {
        let p = &s.profile;
        println!(
            "eager {:>6} B  window {:>7} ns  getwin {:>4}  adaptive {:<5}  knee {:>8} B  overlap {:.3}  tts {:.4} s",
            p.eager_put_max, p.batch_window_ns, p.get_window, p.adaptive, s.knee_bytes, s.overlap, s.tlr_tts_s
        );
    }

    // Winner: smallest knee, then highest overlap, then lowest index (the
    // grid order is fixed, so the choice is deterministic).
    let best_idx = (0..scored.len())
        .min_by(|&a, &b| {
            scored[a]
                .knee_bytes
                .cmp(&scored[b].knee_bytes)
                .then(
                    scored[b]
                        .profile
                        .overlap_millis
                        .cmp(&scored[a].profile.overlap_millis),
                )
                .then(a.cmp(&b))
        })
        .expect("non-empty sweep");
    let best = &scored[best_idx];
    // Fixed reference points for the verify.sh gate: static seed defaults
    // vs the same knobs with the online controller on.
    let find = |adaptive: bool| {
        scored
            .iter()
            .find(|s| {
                let p = &s.profile;
                p.eager_put_max == 4096
                    && p.batch_window_ns == 0
                    && p.get_window == 512
                    && p.adaptive == adaptive
            })
            .expect("seed-default candidate present in the grid")
    };
    let baseline = find(false);
    let adaptive = find(true);
    println!(
        "baseline: knee {} B overlap {:.3} | adaptive: knee {} B overlap {:.3} | best[{}]: {:?}",
        baseline.knee_bytes,
        baseline.overlap,
        adaptive.knee_bytes,
        adaptive.overlap,
        best_idx,
        best.profile
    );

    println!("== bimodal message-size regression: static vs online controller ==");
    let (static_tts, static_msgs) = run_bimodal(false, quick);
    let (adaptive_tts, adaptive_msgs) = run_bimodal(true, quick);
    println!(
        "static   {static_tts:.6} s  {static_msgs} msgs\nadaptive {adaptive_tts:.6} s  {adaptive_msgs} msgs  ({:.2}x faster)",
        static_tts / adaptive_tts
    );

    if let Some(path) = &tune_out {
        let json = best.profile.to_json();
        std::fs::write(path, &json).expect("write --autotune-out profile");
        // Round trip: what --tuned will load must be the winner, bytewise.
        let back = TuneProfile::from_json(
            &std::fs::read_to_string(path).expect("re-read --autotune-out profile"),
        )
        .expect("parse back --autotune-out profile");
        assert_eq!(back, best.profile, "profile round trip drifted");
        assert_eq!(back.to_json(), json, "profile round trip not byte-stable");
        println!("wrote {} ({} bytes)", path.display(), json.len());
    }

    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-tune-v1\",\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"candidates\": {},\n",
        scored.len()
    ));
    let point = |name: &str, s: &Scored, trail: &str| {
        format!(
            "  \"{name}\": {{\"eager_put_max\": {}, \"batch_window_ns\": {}, \"get_window\": {}, \"adaptive\": {}, \"knee_bytes\": {}, \"overlap_millis\": {}, \"tlr_tts_s\": {:.6}}}{trail}\n",
            s.profile.eager_put_max,
            s.profile.batch_window_ns,
            s.profile.get_window,
            s.profile.adaptive,
            s.knee_bytes,
            s.profile.overlap_millis,
            s.tlr_tts_s
        )
    };
    json.push_str(&point("baseline", baseline, ","));
    json.push_str(&point("adaptive", adaptive, ","));
    json.push_str(&point("best", best, ","));
    json.push_str(&format!(
        "  \"bimodal\": {{\"static_tts_s\": {static_tts:.6}, \"adaptive_tts_s\": {adaptive_tts:.6}, \"static_msgs\": {static_msgs}, \"adaptive_msgs\": {adaptive_msgs}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_tune.json");
    println!("wrote {out_path}");
}
