//! Real-substrate execution benchmark → `BENCH_exec.json`.
//!
//! The virtual benchmarks measure *simulated* clusters; this one measures
//! the same scheduler/graph/comm stack running **for real** on the
//! `amt-exec` work-stealing pool (`Cluster::execute_real`), in wall-clock
//! time:
//!
//! * **fine_grained_dag** — a wide level-synchronous DAG of small compute
//!   kernels on one node: pure task-throughput (tasks/sec) per thread
//!   count, the scaling headroom of the spawn/steal/countdown machinery.
//! * **tlr_cholesky** — a Numeric TLR Cholesky (nt ≥ 48 tiles full-scale,
//!   nt = 16 with `--quick`) on 4 protocol nodes: end-to-end scaling of
//!   real kernels plus the real ACTIVATE / GET DATA / put datapath over
//!   the in-process shared-memory transport. The factorization residual
//!   is verified every run.
//! * **calibration** — per task class, mean *simulated* cost (virtual
//!   execution, flops ÷ effective rate) next to the mean *measured*
//!   wall-clock cost (real 1-thread execution): how honest the
//!   simulator's cost model is about this machine.
//!
//! Wall-clock numbers are machine-dependent by nature: `scaling_1_to_2`
//! near 1.0 on a single-core box is the honest result, not a bug (see
//! EXPERIMENTS.md). Flags: `--quick`, `--threads N` (cap the sweep),
//! `--out <path>`.

use amt_bench::alloc_count::{AllocSnapshot, CountingAlloc};
use amt_bench::harness_args;
use amt_core::{Cluster, ClusterConfig, ExecMode, GraphBuilder, TaskDesc};
use amt_tlr::{TlrCholesky, TlrProblem};
use bytes::Bytes;

// Counting allocator: the obs_overhead section reports allocations per
// task with observability off vs on, and verify.sh holds the "off" column
// to the committed bounds (tracing must be pay-for-what-you-use).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One measured execution point.
struct Point {
    threads: usize,
    tasks: u64,
    wall_ms: f64,
    tasks_per_sec: f64,
}

/// A wide level-synchronous DAG: `levels × width` small kernels, each
/// reading its own lane plus the neighbouring lane from the previous
/// level (so lanes cannot be trivially pipelined apart), all on one node
/// — no protocol traffic, pure scheduling + compute.
fn fine_grained_graph(levels: u64, width: u64) -> amt_core::TaskGraph {
    const ELEMS: usize = 512; // 4 KiB per lane payload
    let mut g = GraphBuilder::new(1);
    for lane in 0..width {
        g.data(lane, ELEMS * 8, 0, Some(Bytes::from(vec![1u8; ELEMS * 8])));
    }
    for _level in 0..levels {
        // Snapshot each lane's current version first so every task in the
        // level reads the previous level (not a same-level neighbour).
        let prev: Vec<_> = (0..width)
            .map(|lane| g.current(lane).expect("lane version"))
            .collect();
        for lane in 0..width {
            let right = prev[((lane + 1) % width) as usize];
            g.insert(
                TaskDesc::new("grind")
                    .on_node(0)
                    .flops(2.0 * ELEMS as f64)
                    .read(prev[lane as usize])
                    .read(right)
                    .write(lane, ELEMS * 8)
                    .kernel(|ins| {
                        // A small but real amount of work: mix the two
                        // input lanes through a few integer passes.
                        let mut out = ins[0].to_vec();
                        for pass in 0..4u8 {
                            for (o, r) in out.iter_mut().zip(ins[1].iter()) {
                                *o = o.wrapping_mul(31).wrapping_add(r ^ pass);
                            }
                        }
                        vec![Bytes::from(out)]
                    }),
            );
        }
    }
    g.build()
}

fn run_fine_grained(levels: u64, width: u64, threads: usize) -> Point {
    let graph = fine_grained_graph(levels, width);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 1,
        workers_per_node: 1,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    let report = cluster.execute_real(graph, threads);
    assert!(report.complete());
    let wall_s = report.makespan.as_secs_f64();
    Point {
        threads,
        tasks: report.tasks_executed,
        wall_ms: wall_s * 1e3,
        tasks_per_sec: report.tasks_executed as f64 / wall_s,
    }
}

/// One obs_overhead measurement: the fine-grained DAG with observability
/// (trace + metrics) off or on, reporting wall time and allocations/task.
struct ObsPoint {
    tasks: u64,
    wall_ms: f64,
    allocs_per_task: f64,
}

fn run_fine_grained_obs(levels: u64, width: u64, threads: usize, obs: bool) -> ObsPoint {
    let graph = fine_grained_graph(levels, width);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 1,
        workers_per_node: 1,
        mode: ExecMode::Numeric,
        trace: obs,
        metrics: obs,
        ..Default::default()
    });
    let before = AllocSnapshot::now();
    let report = cluster.execute_real(graph, threads);
    let spent = before.since();
    assert!(report.complete());
    ObsPoint {
        tasks: report.tasks_executed,
        wall_ms: report.makespan.as_secs_f64() * 1e3,
        allocs_per_task: spent.allocs as f64 / report.tasks_executed as f64,
    }
}

fn run_tlr(n: usize, ts: usize, nodes: usize, threads: usize) -> Point {
    let (chol, graph) = TlrCholesky::build_numeric(TlrProblem::new(n, ts), nodes);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        workers_per_node: 8,
        mode: ExecMode::Numeric,
        ..Default::default()
    });
    let report = cluster.execute_real(graph, threads);
    assert!(report.complete());
    let residual = chol.residual(&cluster);
    assert!(
        residual < 1e-6,
        "threads={threads}: factorization residual {residual:.3e}"
    );
    let wall_s = report.makespan.as_secs_f64();
    Point {
        threads,
        tasks: report.tasks_executed,
        wall_ms: wall_s * 1e3,
        tasks_per_sec: report.tasks_executed as f64 / wall_s,
    }
}

/// Per-class `(count, mean µs per task)` from a report's class stats.
fn class_means(report: &amt_core::RunReport) -> Vec<(String, u64, f64)> {
    let mut rows: Vec<(String, u64, f64)> = report
        .class_stats
        .iter()
        .map(|(name, n, busy)| {
            (
                name.clone(),
                *n,
                busy.as_secs_f64() * 1e6 / (*n).max(1) as f64,
            )
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Simulated vs measured mean task cost per class on the same TLR graph.
fn calibration(n: usize, ts: usize, nodes: usize) -> Vec<(String, u64, f64, f64)> {
    let cfg = || ClusterConfig {
        nodes,
        workers_per_node: 8,
        mode: ExecMode::Numeric,
        ..Default::default()
    };
    let (_, graph) = TlrCholesky::build_numeric(TlrProblem::new(n, ts), nodes);
    let mut virt = Cluster::new(cfg());
    let vr = virt.execute(graph);
    assert!(vr.complete());
    let (_, graph) = TlrCholesky::build_numeric(TlrProblem::new(n, ts), nodes);
    let mut real = Cluster::new(cfg());
    let rr = real.execute_real(graph, 1); // 1 thread: no steal interference
    assert!(rr.complete());

    let sim = class_means(&vr);
    let measured = class_means(&rr);
    assert_eq!(sim.len(), measured.len(), "class sets differ across modes");
    sim.into_iter()
        .zip(measured)
        .map(|((name, count, sim_us), (rname, rcount, real_us))| {
            assert_eq!(name, rname);
            assert_eq!(count, rcount, "{name}: execution counts differ");
            (name, count, sim_us, real_us)
        })
        .collect()
}

fn json_points(points: &[Point]) -> String {
    let mut s = String::from("{");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "\"{}\": {{\"tasks_per_sec\": {:.1}, \"wall_ms\": {:.3}}}{}",
            p.threads,
            p.tasks_per_sec,
            p.wall_ms,
            if i + 1 == points.len() { "" } else { ", " }
        ));
    }
    s.push('}');
    s
}

fn scaling_1_to_2(points: &[Point]) -> f64 {
    let t1 = points.iter().find(|p| p.threads == 1);
    let t2 = points.iter().find(|p| p.threads == 2);
    match (t1, t2) {
        (Some(a), Some(b)) => b.tasks_per_sec / a.tasks_per_sec,
        _ => 0.0,
    }
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = {
        let mut it = args.iter();
        // Default to the workspace root (bench binaries run with the
        // package directory as CWD).
        let mut path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_exec.json")
            .to_string_lossy()
            .into_owned();
        while let Some(a) = it.next() {
            if a == "--out" {
                path = it.next().expect("--out requires a value").clone();
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = v.to_string();
            }
        }
        path
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always measure 1, 2 and 4 threads — oversubscription on a smaller
    // box is honest data, and the machinery must be correct regardless.
    let sweep: Vec<usize> = vec![1, 2, 4];

    let (levels, width) = if quick { (40, 64) } else { (120, 128) };
    println!("== fine-grained DAG: {levels} levels x {width} lanes, 1 node ==");
    // Untimed warm-up: page in the heap and warm the allocator so the
    // first measured point isn't charged for process cold-start.
    run_fine_grained(levels, width, 1);
    let mut fine = Vec::new();
    for &t in &sweep {
        let p = run_fine_grained(levels, width, t);
        println!(
            "threads {t}: {:>9.0} tasks/s   ({} tasks in {:.2} ms)",
            p.tasks_per_sec, p.tasks, p.wall_ms
        );
        fine.push(p);
    }

    let (n, ts, nodes) = if quick {
        (512, 32, 4) // nt = 16
    } else {
        (1536, 32, 4) // nt = 48
    };
    let nt = n / ts;
    println!("== TLR Cholesky: N={n}, tile {ts} (nt={nt}), {nodes} nodes, Numeric ==");
    run_tlr(n, ts, nodes, 1); // untimed warm-up
    let mut tlr = Vec::new();
    for &t in &sweep {
        let p = run_tlr(n, ts, nodes, t);
        println!(
            "threads {t}: {:>9.0} tasks/s   ({} tasks in {:.2} ms, residual verified)",
            p.tasks_per_sec, p.tasks, p.wall_ms
        );
        tlr.push(p);
    }

    // Observability overhead: the same fine-grained DAG with tracing +
    // metrics off vs on. The "off" row must match the plain sweep within
    // noise — observability is strictly pay-for-what-you-use — and its
    // allocations/task are deterministic enough to bound in verify.sh.
    let (olevels, owidth) = if quick { (40, 64) } else { (80, 128) };
    let obs_threads = 2usize;
    println!("== observability overhead: {olevels}x{owidth} DAG, {obs_threads} threads ==");
    run_fine_grained_obs(olevels, owidth, obs_threads, false); // warm-up
    let obs_off = run_fine_grained_obs(olevels, owidth, obs_threads, false);
    let obs_on = run_fine_grained_obs(olevels, owidth, obs_threads, true);
    println!(
        "obs off: {:.2} ms, {:.1} allocs/task   obs on: {:.2} ms, {:.1} allocs/task",
        obs_off.wall_ms, obs_off.allocs_per_task, obs_on.wall_ms, obs_on.allocs_per_task
    );

    let (cn, cts) = if quick { (512, 32) } else { (1024, 32) };
    println!("== cost-model calibration: simulated vs measured mean task cost ==");
    let cal = calibration(cn, cts, 4);
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>8}",
        "class", "count", "sim us", "real us", "ratio"
    );
    for (name, count, sim_us, real_us) in &cal {
        println!(
            "{name:<8} {count:>6} {sim_us:>12.1} {real_us:>12.1} {:>8.2}",
            real_us / sim_us
        );
    }

    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-exec-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"threads_available\": {available},\n"));
    json.push_str(&format!(
        "  \"fine_grained_dag\": {{\"levels\": {levels}, \"width\": {width}, \"per_thread\": {}, \"scaling_1_to_2\": {:.3}}},\n",
        json_points(&fine),
        scaling_1_to_2(&fine)
    ));
    json.push_str(&format!(
        "  \"tlr_cholesky\": {{\"n\": {n}, \"tile\": {ts}, \"nt\": {nt}, \"nodes\": {nodes}, \"per_thread\": {}, \"scaling_1_to_2\": {:.3}}},\n",
        json_points(&tlr),
        scaling_1_to_2(&tlr)
    ));
    json.push_str(&format!(
        "  \"obs_overhead\": {{\"levels\": {olevels}, \"width\": {owidth}, \"threads\": {obs_threads}, \"tasks\": {}, \"off\": {{\"wall_ms\": {:.3}, \"allocs_per_task\": {:.1}}}, \"on\": {{\"wall_ms\": {:.3}, \"allocs_per_task\": {:.1}}}}},\n",
        obs_off.tasks, obs_off.wall_ms, obs_off.allocs_per_task, obs_on.wall_ms, obs_on.allocs_per_task
    ));
    json.push_str("  \"calibration\": [\n");
    for (i, (name, count, sim_us, real_us)) in cal.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"class\": \"{name}\", \"count\": {count}, \"sim_us\": {sim_us:.2}, \"real_us\": {real_us:.2}, \"real_over_sim\": {:.3}}}{}\n",
            real_us / sim_us,
            if i + 1 == cal.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_exec.json");
    println!("wrote {out_path}");
}
