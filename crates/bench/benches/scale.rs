//! Cluster-scale benchmark → `BENCH_scale.json`.
//!
//! PRs 1–8 validated the runtime at the paper's 32-node envelope; this
//! bench measures the three mechanisms that push the *simulated* cluster
//! 10–100× past it, on one box:
//!
//! * **scaling** — windowed CostOnly TLR Cholesky at 32 → 1024 simulated
//!   nodes with the flyweight node state: simulator events/sec,
//!   time-to-solution, and the deterministic peak-live-bytes RSS proxy
//!   (the counting `#[global_allocator]`) per node count.
//!
//! * **flyweight_memory** — dense per-node version state vs the flyweight
//!   (sparse store + shared config + per-node-indexed dependency
//!   counters), on the workload that isolates the mechanism: 512
//!   independent per-node chains, where each node only ever touches
//!   1/nodes of the global version space. The dense layout pays
//!   O(nodes × versions) bytes regardless; the flyweight pays
//!   O(versions touched). verify.sh gates the flyweight peak at ≤ 0.5×
//!   the dense baseline. (The TLR rows above already run the flyweight
//!   end-to-end; at those shapes per-node engine state, not the version
//!   table, dominates the footprint.)
//!
//! * **islands** — the conservative-lookahead island-parallel DES at 1,
//!   2, and 4 islands on the same workload: the reports must be
//!   byte-identical (the determinism contract), and the wall-clock
//!   speedup is recorded together with `threads_available` — on a
//!   single-core host the honest expectation is ≈ 1.0×, and verify.sh
//!   gates ≥ 1.5× at 4 islands only when at least 4 cores exist.
//!
//! * **million_task** — the headline capacity point: a million-task TLR
//!   Cholesky on 1024 simulated nodes, windowed + flyweight, completing
//!   in bounded memory.
//!
//! Everything runs in virtual time, so every number except the wall-clock
//! columns repeats exactly.
//!
//! Flags: `--quick` (smoke sizes for CI), `--out <path>`.

use std::time::Instant;

use amt_bench::alloc_count::{peak_live_bytes, reset_peak_live_bytes, CountingAlloc};
use amt_bench::harness_args;
use amt_comm::BackendKind;
use amt_core::{
    execute_islands, Cluster, ClusterConfig, ExecMode, GraphBuilder, GraphSource, TaskDesc,
};
use amt_tlr::{TlrCholesky, TlrCholeskySource, TlrProblem};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Paper tile size; the tile-grid side `nt` scales the problem.
const TS: usize = 1200;
/// Discovery window for the windowed runs: bounds live graph state.
const WINDOW: usize = 20_000;

fn scale_cfg(nodes: usize, flyweight: bool) -> ClusterConfig {
    ClusterConfig {
        flyweight,
        mode: ExecMode::CostOnly,
        get_window_bytes: 2 << 20,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    }
}

/// One windowed + flyweight scaling row.
struct Row {
    nodes: usize,
    nt: usize,
    tasks: u64,
    makespan_s: f64,
    sim_events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_bytes: u64,
}

/// Windowed CostOnly TLR Cholesky on `nodes` simulated nodes; peak bytes
/// cover graph discovery + execution (construction is part of the cost at
/// this scale).
fn run_row(nodes: usize, nt: usize, flyweight: bool) -> Row {
    let problem = TlrProblem::new(nt * TS, TS);
    let mut cluster = Cluster::new(scale_cfg(nodes, flyweight));
    reset_peak_live_bytes();
    let base = peak_live_bytes();
    let source = TlrCholeskySource::cost_only(problem, nodes);
    let t0 = Instant::now();
    let report = cluster.execute_windowed(Box::new(source), WINDOW);
    let wall = t0.elapsed().as_secs_f64();
    assert!(report.complete(), "nodes={nodes} nt={nt} incomplete");
    let peak = peak_live_bytes() - base;
    Row {
        nodes,
        nt,
        tasks: report.tasks_total,
        makespan_s: report.makespan.as_secs_f64(),
        sim_events: report.sim_events,
        wall_s: wall,
        events_per_sec: report.sim_events as f64 / wall.max(1e-9),
        peak_bytes: peak,
    }
}

fn mib(b: u64) -> f64 {
    b as f64 / (1 << 20) as f64
}

/// `nodes` independent per-node chains, interleaved round-robin in
/// discovery order: task `i` runs on node `i % nodes` and rewrites that
/// node's key. No cross-node traffic — the workload isolates per-node
/// *state* memory, where the dense layout pays O(nodes × total versions)
/// while each node only ever touches its own 1/nodes slice.
struct ShardedChains {
    nodes: usize,
    total: usize,
    next: usize,
}

impl GraphSource for ShardedChains {
    fn next_task(&mut self, g: &mut GraphBuilder) -> bool {
        if self.next >= self.total {
            return false;
        }
        let node = self.next % self.nodes;
        let key = node as u64;
        if self.next < self.nodes {
            g.data(key, 8, node, None);
        }
        g.insert(
            TaskDesc::new("link")
                .on_node(node)
                .flops(1e6)
                .read_key(key)
                .write(key, 8),
        );
        self.next += 1;
        true
    }
}

/// Windowed sharded-chain run; returns (tasks, makespan_s, peak bytes).
fn run_chains(nodes: usize, per_node: usize, flyweight: bool) -> (u64, f64, u64) {
    let mut cluster = Cluster::new(scale_cfg(nodes, flyweight));
    reset_peak_live_bytes();
    let base = peak_live_bytes();
    let source = ShardedChains {
        nodes,
        total: nodes * per_node,
        next: 0,
    };
    let report = cluster.execute_windowed(Box::new(source), WINDOW);
    assert!(report.complete(), "chains nodes={nodes} incomplete");
    (
        report.tasks_total,
        report.makespan.as_secs_f64(),
        peak_live_bytes() - base,
    )
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = {
        let mut it = args.iter();
        let mut path = String::from("BENCH_scale.json");
        while let Some(a) = it.next() {
            if a == "--out" {
                path = it.next().expect("--out requires a value").clone();
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = v.to_string();
            }
        }
        path
    };
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // (nodes, tile-grid side) per scaling row.
    let scaling_points: &[(usize, usize)] = if quick {
        &[(32, 12), (128, 16)]
    } else {
        &[(32, 24), (128, 40), (512, 64), (1024, 80)]
    };
    let mem_chain = if quick { 100 } else { 2000 };
    let island_nt = if quick { 12 } else { 24 };
    let island_counts: &[usize] = &[1, 2, 4];
    // nt = 181 → 181 + 181·180 + 181·180·179/6 = 1,004,731 tasks.
    let million_nt = if quick { 16 } else { 181 };

    println!("== scaling: windowed + flyweight TLR Cholesky, 32 -> 1024 simulated nodes ==");
    let mut rows = Vec::new();
    for &(nodes, nt) in scaling_points {
        let r = run_row(nodes, nt, true);
        println!(
            "nodes={:<5} nt={:<4} {:>8} tasks  makespan {:>8.3} s  {:>9} events  {:>9.0} ev/s  peak {:>8.1} MiB  wall {:>6.1} s",
            r.nodes, r.nt, r.tasks, r.makespan_s, r.sim_events, r.events_per_sec,
            mib(r.peak_bytes), r.wall_s
        );
        rows.push(r);
    }

    println!("== flyweight vs dense node state: 512 sharded chains ==");
    let mem_nodes = 512;
    let (dense_tasks, dense_ms, dense_peak) = run_chains(mem_nodes, mem_chain, false);
    let (fly_tasks, fly_ms, fly_peak) = run_chains(mem_nodes, mem_chain, true);
    assert_eq!(dense_tasks, fly_tasks, "flyweight changed the graph");
    assert_eq!(dense_ms, fly_ms, "flyweight changed virtual time");
    let mem_ratio = fly_peak as f64 / dense_peak.max(1) as f64;
    println!(
        "chain={mem_chain}/node ({dense_tasks} tasks): dense {:.1} MiB   flyweight {:.1} MiB   ratio {mem_ratio:.3}",
        mib(dense_peak),
        mib(fly_peak),
    );

    println!("== island-parallel DES: byte-identity and speedup ==");
    let island_nodes = 32;
    let island_cfg = scale_cfg(island_nodes, false);
    let island_problem = TlrProblem::new(island_nt * TS, TS);
    let mut island_runs: Vec<(usize, f64, String)> = Vec::new();
    for &k in island_counts {
        let problem = island_problem.clone();
        let t0 = Instant::now();
        let report = execute_islands(&island_cfg, k, |g| {
            TlrCholesky::build_cost_only_into(problem.clone(), island_nodes, g);
        });
        let wall = t0.elapsed().as_secs_f64();
        assert!(report.complete(), "islands={k} incomplete");
        println!(
            "islands={k}  makespan {:>8.3} s  wall {:>6.2} s",
            report.makespan.as_secs_f64(),
            wall
        );
        island_runs.push((k, wall, report.to_json()));
    }
    let byte_identical = island_runs.iter().all(|(_, _, j)| *j == island_runs[0].2);
    assert!(byte_identical, "island reports diverged");
    let speedup_at_max = island_runs[0].1 / island_runs.last().expect("non-empty").1.max(1e-9);
    println!(
        "byte-identical at every island count; {}-island speedup {speedup_at_max:.2}x on {threads_available} core(s)",
        island_counts.last().expect("non-empty"),
    );

    println!("== million-task capacity point: 1024 nodes, windowed + flyweight ==");
    let million = run_row(1024, million_nt, true);
    if !quick {
        assert!(
            million.tasks >= 1_000_000,
            "capacity point too small: {} tasks",
            million.tasks
        );
    }
    println!(
        "nodes=1024 nt={million_nt}: {} tasks  makespan {:.3} s  {:.0} ev/s  peak {:.1} MiB  wall {:.1} s",
        million.tasks,
        million.makespan_s,
        million.events_per_sec,
        mib(million.peak_bytes),
        million.wall_s
    );

    let row_json = |r: &Row| {
        format!(
            "{{\"nodes\": {}, \"tile_count\": {}, \"tasks\": {}, \"makespan_s\": {:.6}, \"sim_events\": {}, \"wall_s\": {:.3}, \"events_per_sec\": {:.0}, \"peak_live_bytes\": {}}}",
            r.nodes, r.nt, r.tasks, r.makespan_s, r.sim_events, r.wall_s, r.events_per_sec,
            r.peak_bytes
        )
    };
    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-scale-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str("  \"scaling\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            row_json(r),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"flyweight_memory\": {{\"nodes\": {mem_nodes}, \"chain_per_node\": {mem_chain}, \"tasks\": {dense_tasks}, \"dense_peak_bytes\": {dense_peak}, \"flyweight_peak_bytes\": {fly_peak}, \"ratio\": {mem_ratio:.4}}},\n",
    ));
    json.push_str(&format!(
        "  \"islands\": {{\"nodes\": {island_nodes}, \"tile_count\": {island_nt}, \"byte_identical\": {byte_identical}, \"speedup_at_max\": {speedup_at_max:.3}, \"runs\": [",
    ));
    for (i, (k, wall, _)) in island_runs.iter().enumerate() {
        json.push_str(&format!(
            "{{\"islands\": {k}, \"wall_s\": {wall:.3}}}{}",
            if i + 1 == island_runs.len() { "" } else { ", " }
        ));
    }
    json.push_str("]},\n");
    json.push_str(&format!("  \"million_task\": {}\n", row_json(&million)));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_scale.json");
    println!("wrote {out_path}");
}
