//! Wall-clock microbenchmarks: engine throughput and kernel speed of the
//! substrates themselves (performance of the simulator and libraries, not
//! virtual-time results).
//!
//! Self-timed (median of repeated runs) rather than criterion-based so the
//! workspace builds offline with no external dev-dependencies.

use amt_comm::{CommWorld, EngineConfig};
use amt_lci::{LciCosts, LciWorld};
use amt_linalg::{gemm, potrf, qr_thin, svd_jacobi, Matrix, Trans};
use amt_minimpi::{MpiCosts, MpiWorld, SrcSel};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use amt_tlr::LrTile;
use std::rc::Rc;
use std::time::Instant;

const SAMPLES: usize = 10;

/// Runs `f` SAMPLES times and reports the median wall-clock time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // One warm-up run so allocator and caches settle.
    std::hint::black_box(f());
    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!("{name:<40} {median:>10.3} ms   [{lo:.3} .. {hi:.3}]");
}

fn des_event_throughput() {
    bench("simnet/100k_chained_events", || {
        let mut sim = Sim::new();
        fn chain(sim: &mut Sim, left: u32) {
            if left > 0 {
                sim.schedule_in(SimTime::from_ns(10), move |sim| chain(sim, left - 1));
            }
        }
        chain(&mut sim, 100_000);
        sim.run();
        sim.events_executed()
    });
}

fn fabric_message_rate() {
    bench("netmodel/10k_small_messages", || {
        let mut sim = Sim::new();
        let fab = Fabric::new(FabricConfig::expanse(2));
        fab.borrow_mut()
            .set_handler(1, amt_netmodel::rx_handler(|_, _| {}));
        for _ in 0..10_000 {
            Fabric::send(&fab, &mut sim, 0, 1, 64, amt_netmodel::Payload::Empty, None);
        }
        sim.run();
    });
}

fn minimpi_matching() {
    for depth in [10usize, 100, 1000] {
        bench(&format!("minimpi/unexpected_scan/depth_{depth}"), || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::expanse(2));
            let ranks = MpiWorld::create(&fabric, MpiCosts::default());
            for i in 0..depth as u64 {
                ranks[0].send(&mut sim, 1, 1000 + i, 32, None);
            }
            sim.run();
            // Drain the incoming queue into the unexpected queue.
            let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1);
            let _ = ranks[1].test(&mut sim, r);
            // The measured operation: post a non-matching receive (full
            // unexpected-queue scan). Setup dominates; the relative cost
            // across depths is what matters.
            let (r, cost) = ranks[1].irecv(&mut sim, SrcSel::Any, 2);
            ranks[1].release(r);
            cost
        });
    }
}

fn lci_op_issue() {
    bench("lci/sendb_issue_100", || {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::expanse(2));
        let eps = LciWorld::create(&fabric, LciCosts::default());
        eps[1].set_am_handler(|_, _| SimTime::ZERO);
        for _ in 0..100 {
            eps[0].sendb(&mut sim, 1, 0, 1024, None).expect("sendb");
        }
        sim.run();
    });
}

fn comm_engine_am_roundtrip() {
    for cfg in EngineConfig::all_backends() {
        bench(&format!("comm/1k_am_roundtrips/{}", cfg.backend), || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::expanse(2));
            let engines = CommWorld::create(&mut sim, &fabric, cfg.clone());
            engines[1].register_am(&mut sim, 1, Rc::new(|_s, _e, _ev| SimTime::ZERO));
            for _ in 0..1000 {
                engines[0].send_am_opts(&mut sim, 1, 1, 64, None, false);
            }
            sim.run();
        });
    }
}

fn linalg_kernels() {
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 31 + j * 17) as f64).sin());
    let spd = {
        let mut s = Matrix::zeros(64, 64);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut s);
        for i in 0..64 {
            s.add_assign_at(i, i, 64.0);
        }
        s
    };
    bench("linalg/gemm_64", || {
        let mut out = Matrix::zeros(64, 64);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut out);
        out
    });
    bench("linalg/potrf_64", || potrf(&spd).expect("spd"));
    let m = Matrix::from_fn(64, 16, |i, j| ((i + 3 * j) as f64).cos());
    bench("linalg/qr_64x16", || qr_thin(&m));
    let m2 = Matrix::from_fn(32, 16, |i, j| 1.0 / (1.0 + (i + j) as f64));
    bench("linalg/svd_32x16", || svd_jacobi(&m2));
}

fn tlr_compression() {
    let block = Matrix::from_fn(64, 64, |i, j| {
        (-((i as f64 - j as f64) / 16.0).powi(2)).exp()
    });
    bench("tlr/compress_64", || LrTile::compress(&block, 1e-8, 32));
    let t = LrTile::compress(&block, 1e-8, 32);
    let w = Matrix::from_fn(64, 4, |i, j| ((i * 7 + j) as f64).sin());
    let z = Matrix::from_fn(64, 4, |i, j| ((i + j * 5) as f64).cos());
    bench("tlr/add_truncate_64_r4", || {
        t.add_truncate(&w, &z, 1e-8, 32)
    });
}

fn main() {
    println!("{:<40} {:>13}   [min .. max]", "benchmark", "median");
    des_event_throughput();
    fabric_message_rate();
    minimpi_matching();
    lci_op_issue();
    comm_engine_am_roundtrip();
    linalg_kernels();
    tlr_compression();
}
