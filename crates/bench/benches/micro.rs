//! Wall-clock microbenchmarks: engine throughput and kernel speed of the
//! substrates themselves (performance of the simulator and libraries, not
//! virtual-time results).
//!
//! Self-timed (median of repeated runs) rather than criterion-based so the
//! workspace builds offline with no external dev-dependencies.
//!
//! ## Engine suite → `BENCH_engine.json`
//!
//! The first section drives the ladder/slab engine ([`Sim`]) and, where the
//! scenario permits, the in-tree seed engine ([`RefSim`]) through identical
//! event patterns, and writes per-scenario `ns/event`, `events/sec` and the
//! ladder-over-reference speedup to `BENCH_engine.json` at the workspace
//! root. Every future change has a perf trajectory to regress against.
//!
//! Flags:
//! * `--quick` — smoke mode: tiny event counts, 3 samples (used by
//!   `scripts/verify.sh` to validate the JSON schema, not the numbers);
//! * `--out <path>` — write the JSON elsewhere;
//! * `--engine-only` — skip the kernel/library benchmarks.

use amt_bench::harness_args;
use amt_bench::tlrrun::{run_tlr, TlrRunCfg};
use amt_comm::{BackendKind, CommWorld, EngineConfig};
use amt_lci::{LciCosts, LciWorld};
use amt_linalg::{gemm, potrf, qr_thin, svd_jacobi, Matrix, Trans};
use amt_minimpi::{MpiCosts, MpiWorld, SrcSel};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::reference::RefSim;
use amt_simnet::rng::DetRng;
use amt_simnet::{Sim, SimTime};
use amt_tlr::LrTile;
use std::rc::Rc;
use std::time::Instant;

/// Runs `f` `samples` times (plus one warm-up) and returns the median
/// wall-clock seconds.
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// Median-of-samples wall-clock printer for the kernel benchmarks.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let mut times: Vec<f64> = Vec::with_capacity(10);
    for _ in 0..10 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!("{name:<40} {median:>10.3} ms   [{lo:.3} .. {hi:.3}]");
}

/// One engine-suite measurement.
struct Scenario {
    name: &'static str,
    events: u64,
    ns_per_event: f64,
    /// Seed-engine ns/event on the same pattern, when expressible there.
    ref_ns_per_event: Option<f64>,
}

impl Scenario {
    fn events_per_sec(&self) -> f64 {
        1e9 / self.ns_per_event
    }
    fn speedup(&self) -> Option<f64> {
        self.ref_ns_per_event.map(|r| r / self.ns_per_event)
    }
}

/// Measure `run(n)` (which must execute exactly its returned event count).
fn measure(
    name: &'static str,
    samples: usize,
    n: u64,
    run: impl Fn(u64) -> u64,
    reference: Option<&dyn Fn(u64) -> u64>,
) -> Scenario {
    let events = run(n);
    let secs = median_secs(samples, || run(n));
    let ns_per_event = secs * 1e9 / events as f64;
    let ref_ns_per_event = reference.map(|r| {
        let rev = r(n);
        median_secs(samples, || r(n)) * 1e9 / rev as f64
    });
    Scenario {
        name,
        events,
        ns_per_event,
        ref_ns_per_event,
    }
}

/// Tight chain of near-future events: the simulator's hottest pattern
/// (progress polls, NIC serialization). One pending event at a time.
fn churn_chain(n: u64) -> u64 {
    let mut sim = Sim::new();
    fn chain(sim: &mut Sim, left: u64) {
        if left > 0 {
            sim.schedule_in(SimTime::from_ns(10), move |sim| chain(sim, left - 1));
        }
    }
    chain(&mut sim, n);
    sim.run();
    sim.events_executed()
}

fn churn_chain_ref(n: u64) -> u64 {
    let mut sim = RefSim::new();
    fn chain(sim: &mut RefSim, left: u64) {
        if left > 0 {
            sim.schedule_in(SimTime::from_ns(10), move |sim| chain(sim, left - 1));
        }
    }
    chain(&mut sim, n);
    sim.run();
    sim.events_executed()
}

/// Preload a big pseudorandom batch spanning near and far horizons, then
/// drain it: the queue-discipline stress (large pending set, arbitrary
/// insertion order).
fn preload_drain(n: u64) -> u64 {
    let mut sim = Sim::new();
    let mut rng = DetRng::seed_from_u64(42);
    for _ in 0..n {
        // 0..16 ms: a mix of in-window and far-heap inserts.
        let at = SimTime::from_ns(rng.gen_range(0..16_000_000));
        sim.schedule_at(at, |_| {});
    }
    sim.run();
    sim.events_executed()
}

fn preload_drain_ref(n: u64) -> u64 {
    let mut sim = RefSim::new();
    let mut rng = DetRng::seed_from_u64(42);
    for _ in 0..n {
        let at = SimTime::from_ns(rng.gen_range(0..16_000_000));
        sim.schedule_at(at, |_| {});
    }
    sim.run();
    sim.events_executed()
}

/// Same-instant bursts through the `schedule_now` fast path (callback
/// cascades, waiter wakeups): each step event fans out 8 now-events.
fn now_burst(n: u64) -> u64 {
    let mut sim = Sim::new();
    fn step(sim: &mut Sim, left: u64) {
        if left == 0 {
            return;
        }
        for _ in 0..8 {
            sim.schedule_now(|_| {});
        }
        sim.schedule_in(SimTime::from_ns(50), move |sim| step(sim, left - 1));
    }
    step(&mut sim, n / 9);
    sim.run();
    sim.events_executed()
}

fn now_burst_ref(n: u64) -> u64 {
    let mut sim = RefSim::new();
    fn step(sim: &mut RefSim, left: u64) {
        if left == 0 {
            return;
        }
        for _ in 0..8 {
            sim.schedule_now(|_| {});
        }
        sim.schedule_in(SimTime::from_ns(50), move |sim| step(sim, left - 1));
    }
    step(&mut sim, n / 9);
    sim.run();
    sim.events_executed()
}

/// Timer-wheel pattern: every step arms a timeout and cancels the previous
/// one (the common schedule/cancel churn of retry timers). No reference
/// series — the seed engine has no cancellation.
fn schedule_cancel(n: u64) -> u64 {
    use amt_simnet::EventToken;
    let mut sim = Sim::new();
    fn step(sim: &mut Sim, left: u64, timer: Option<EventToken>) {
        if let Some(t) = timer {
            sim.cancel(t);
        }
        if left == 0 {
            return;
        }
        let t = sim.schedule_at_cancelable(sim.now() + SimTime::from_us(100), |_| {
            panic!("timeout fired despite cancel")
        });
        sim.schedule_in(SimTime::from_ns(20), move |sim| {
            step(sim, left - 1, Some(t))
        });
    }
    step(&mut sim, n, None);
    sim.run();
    sim.events_executed()
}

/// Alternating near hops and multi-millisecond jumps: exercises far-heap
/// migration and empty-bucket skipping, the ladder's worst case.
fn mixed_horizon(n: u64) -> u64 {
    let mut sim = Sim::new();
    fn hop(sim: &mut Sim, left: u64) {
        if left == 0 {
            return;
        }
        let delay = if left.is_multiple_of(16) {
            SimTime::from_ms(6) // beyond the ring window
        } else {
            SimTime::from_ns(200)
        };
        sim.schedule_in(delay, move |sim| hop(sim, left - 1));
    }
    hop(&mut sim, n);
    sim.run();
    sim.events_executed()
}

fn mixed_horizon_ref(n: u64) -> u64 {
    let mut sim = RefSim::new();
    fn hop(sim: &mut RefSim, left: u64) {
        if left == 0 {
            return;
        }
        let delay = if left.is_multiple_of(16) {
            SimTime::from_ms(6)
        } else {
            SimTime::from_ns(200)
        };
        sim.schedule_in(delay, move |sim| hop(sim, left - 1));
    }
    hop(&mut sim, n);
    sim.run();
    sim.events_executed()
}

fn engine_suite(quick: bool, out: &std::path::Path) {
    let samples = if quick { 3 } else { 10 };
    let scale: u64 = if quick { 2_000 } else { 100_000 };

    println!(
        "{:<28} {:>8} {:>12} {:>14} {:>10} {:>9}",
        "engine scenario", "events", "ns/event", "events/sec", "ref ns/ev", "speedup"
    );
    let mut scenarios = vec![measure(
        "churn_chain_near",
        samples,
        scale,
        churn_chain,
        Some(&churn_chain_ref),
    )];
    scenarios.push(measure(
        "churn_preload_drain",
        samples,
        scale / 2,
        preload_drain,
        Some(&preload_drain_ref),
    ));
    scenarios.push(measure(
        "schedule_now_burst",
        samples,
        scale,
        now_burst,
        Some(&now_burst_ref),
    ));
    scenarios.push(measure(
        "schedule_cancel",
        samples,
        scale / 2,
        schedule_cancel,
        None,
    ));
    scenarios.push(measure(
        "mixed_horizon",
        samples,
        scale / 2,
        mixed_horizon,
        Some(&mixed_horizon_ref),
    ));

    // One real workload point (the golden fig4 configuration) so the suite
    // tracks end-to-end simulator throughput, not just queue microcosms.
    {
        let cfg = TlrRunCfg {
            backend: BackendKind::Lci,
            nodes: 4,
            n: if quick { 12_000 } else { 24_000 },
            tile_size: 3000,
            multithread_am: false,
            tuning: Default::default(),
        };
        let mut events = 0u64;
        let secs = median_secs(if quick { 1 } else { 3 }, || {
            let r = run_tlr(&cfg);
            events = r.sim_events;
            r
        });
        scenarios.push(Scenario {
            name: "fig4_point",
            events,
            ns_per_event: secs * 1e9 / events as f64,
            ref_ns_per_event: None,
        });
    }

    for s in &scenarios {
        println!(
            "{:<28} {:>8} {:>12.2} {:>14.3e} {:>10} {:>9}",
            s.name,
            s.events,
            s.ns_per_event,
            s.events_per_sec(),
            s.ref_ns_per_event.map_or("-".into(), |r| format!("{r:.2}")),
            s.speedup().map_or("-".into(), |x| format!("{x:.2}x")),
        );
    }

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-engine-v1\",\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"samples\": {samples},\n"
    ));
    json.push_str("  \"scenarios\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"events\": {}, \"ns_per_event\": {:.3}, \"events_per_sec\": {:.1}",
            s.name,
            s.events,
            s.ns_per_event,
            s.events_per_sec()
        ));
        if let (Some(r), Some(x)) = (s.ref_ns_per_event, s.speedup()) {
            json.push_str(&format!(
                ", \"ref_ns_per_event\": {r:.3}, \"speedup\": {x:.3}"
            ));
        }
        json.push_str(if i + 1 == scenarios.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  }\n}\n");
    std::fs::write(out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("\nengine suite written to {}", out.display());
}

fn fabric_message_rate() {
    bench("netmodel/10k_small_messages", || {
        let mut sim = Sim::new();
        let fab = Fabric::new(FabricConfig::expanse(2));
        fab.borrow_mut()
            .set_handler(1, amt_netmodel::rx_handler(|_, _| {}));
        for _ in 0..10_000 {
            Fabric::send(&fab, &mut sim, 0, 1, 64, amt_netmodel::Payload::Empty, None);
        }
        sim.run();
    });
}

fn minimpi_matching() {
    for depth in [10usize, 100, 1000] {
        bench(&format!("minimpi/unexpected_scan/depth_{depth}"), || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::expanse(2));
            let ranks = MpiWorld::create(&fabric, MpiCosts::default());
            for i in 0..depth as u64 {
                ranks[0].send(&mut sim, 1, 1000 + i, 32, bytes::Frames::Empty);
            }
            sim.run();
            // Drain the incoming queue into the unexpected queue.
            let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1);
            let _ = ranks[1].test(&mut sim, r);
            // The measured operation: post a non-matching receive (full
            // unexpected-queue scan). Setup dominates; the relative cost
            // across depths is what matters.
            let (r, cost) = ranks[1].irecv(&mut sim, SrcSel::Any, 2);
            ranks[1].release(r);
            cost
        });
    }
}

fn lci_op_issue() {
    bench("lci/sendb_issue_100", || {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::expanse(2));
        let eps = LciWorld::create(&fabric, LciCosts::default());
        eps[1].set_am_handler(|_, _| SimTime::ZERO);
        for _ in 0..100 {
            eps[0]
                .sendb(&mut sim, 1, 0, 1024, bytes::Frames::Empty)
                .expect("sendb");
        }
        sim.run();
    });
}

fn comm_engine_am_roundtrip() {
    for cfg in EngineConfig::all_backends() {
        bench(&format!("comm/1k_am_roundtrips/{}", cfg.backend), || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::expanse(2));
            let engines = CommWorld::create(&mut sim, &fabric, cfg.clone());
            engines[1].register_am(&mut sim, 1, Rc::new(|_s, _e, _ev| SimTime::ZERO));
            for _ in 0..1000 {
                engines[0].send_am_opts(&mut sim, 1, 1, 64, None, false);
            }
            sim.run();
        });
    }
}

fn linalg_kernels() {
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 31 + j * 17) as f64).sin());
    let spd = {
        let mut s = Matrix::zeros(64, 64);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut s);
        for i in 0..64 {
            s.add_assign_at(i, i, 64.0);
        }
        s
    };
    bench("linalg/gemm_64", || {
        let mut out = Matrix::zeros(64, 64);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut out);
        out
    });
    bench("linalg/potrf_64", || potrf(&spd).expect("spd"));
    let m = Matrix::from_fn(64, 16, |i, j| ((i + 3 * j) as f64).cos());
    bench("linalg/qr_64x16", || qr_thin(&m));
    let m2 = Matrix::from_fn(32, 16, |i, j| 1.0 / (1.0 + (i + j) as f64));
    bench("linalg/svd_32x16", || svd_jacobi(&m2));
}

fn tlr_compression() {
    let block = Matrix::from_fn(64, 64, |i, j| {
        (-((i as f64 - j as f64) / 16.0).powi(2)).exp()
    });
    bench("tlr/compress_64", || LrTile::compress(&block, 1e-8, 32));
    let t = LrTile::compress(&block, 1e-8, 32);
    let w = Matrix::from_fn(64, 4, |i, j| ((i * 7 + j) as f64).sin());
    let z = Matrix::from_fn(64, 4, |i, j| ((i + j * 5) as f64).cos());
    bench("tlr/add_truncate_64_r4", || {
        t.add_truncate(&w, &z, 1e-8, 32)
    });
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let engine_only = args.iter().any(|a| a == "--engine-only");
    let out = {
        let mut it = args.iter();
        let mut path = None;
        while let Some(a) = it.next() {
            if a == "--out" {
                path = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| panic!("--out requires a path")),
                ));
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = Some(std::path::PathBuf::from(v));
            }
        }
        path.unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
        })
    };

    engine_suite(quick, &out);

    if quick || engine_only {
        return;
    }
    println!();
    println!("{:<40} {:>13}   [min .. max]", "benchmark", "median");
    fabric_message_rate();
    minimpi_matching();
    lci_op_issue();
    comm_engine_am_roundtrip();
    linalg_kernels();
    tlr_compression();
}
