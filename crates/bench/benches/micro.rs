//! Criterion microbenchmarks: engine throughput and kernel speed of the
//! substrates themselves (wall-clock performance of the simulator and
//! libraries, not virtual-time results).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use amt_comm::{CommWorld, EngineConfig};
use amt_lci::{LciCosts, LciWorld};
use amt_linalg::{gemm, potrf, qr_thin, svd_jacobi, Matrix, Trans};
use amt_minimpi::{MpiCosts, MpiWorld, SrcSel};
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::{Sim, SimTime};
use amt_tlr::LrTile;
use std::rc::Rc;

fn des_event_throughput(c: &mut Criterion) {
    c.bench_function("simnet/100k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            fn chain(sim: &mut Sim, left: u32) {
                if left > 0 {
                    sim.schedule_in(SimTime::from_ns(10), move |sim| chain(sim, left - 1));
                }
            }
            chain(&mut sim, 100_000);
            sim.run();
            sim.events_executed()
        })
    });
}

fn fabric_message_rate(c: &mut Criterion) {
    c.bench_function("netmodel/10k_small_messages", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            let fab = Fabric::new(FabricConfig::expanse(2));
            fab.borrow_mut()
                .set_handler(1, amt_netmodel::rx_handler(|_, _| {}));
            for _ in 0..10_000 {
                Fabric::send(&fab, &mut sim, 0, 1, 64, amt_netmodel::Payload::Empty, None);
            }
            sim.run();
        })
    });
}

fn minimpi_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimpi/unexpected_queue_scan");
    for depth in [10usize, 100, 1000] {
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Sim::new();
                    let fabric = Fabric::new(FabricConfig::expanse(2));
                    let ranks = MpiWorld::create(&fabric, MpiCosts::default());
                    for i in 0..depth as u64 {
                        ranks[0].send(&mut sim, 1, 1000 + i, 32, None);
                    }
                    sim.run();
                    // Drain the incoming queue into the unexpected queue.
                    let (r, _) = ranks[1].irecv(&mut sim, SrcSel::Any, 1);
                    let _ = ranks[1].test(&mut sim, r);
                    (sim, ranks)
                },
                |(mut sim, ranks)| {
                    // The measured operation: post a non-matching receive
                    // (full unexpected-queue scan).
                    let (r, cost) = ranks[1].irecv(&mut sim, SrcSel::Any, 2);
                    ranks[1].release(r);
                    cost
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn lci_op_issue(c: &mut Criterion) {
    c.bench_function("lci/sendb_issue", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let fabric = Fabric::new(FabricConfig::expanse(2));
                let eps = LciWorld::create(&fabric, LciCosts::default());
                eps[1].set_am_handler(|_, _| SimTime::ZERO);
                (sim, eps)
            },
            |(mut sim, eps)| {
                for _ in 0..100 {
                    eps[0].sendb(&mut sim, 1, 0, 1024, None).expect("sendb");
                }
                sim.run();
            },
            BatchSize::SmallInput,
        )
    });
}

fn comm_engine_am_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm/1k_am_roundtrips");
    for cfg in [EngineConfig::mpi(), EngineConfig::lci()] {
        g.bench_function(format!("{}", cfg.backend), |b| {
            let cfg = cfg.clone();
            b.iter(|| {
                let mut sim = Sim::new();
                let fabric = Fabric::new(FabricConfig::expanse(2));
                let engines = CommWorld::create(&mut sim, &fabric, cfg.clone());
                engines[1].register_am(&mut sim, 1, Rc::new(|_s, _e, _ev| SimTime::ZERO));
                for _ in 0..1000 {
                    engines[0].send_am_opts(&mut sim, 1, 1, 64, None, false);
                }
                sim.run();
            })
        });
    }
    g.finish();
}

fn linalg_kernels(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 31 + j * 17) as f64).sin());
    let spd = {
        let mut s = Matrix::zeros(64, 64);
        gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut s);
        for i in 0..64 {
            s.add_assign_at(i, i, 64.0);
        }
        s
    };
    c.bench_function("linalg/gemm_64", |b| {
        b.iter(|| {
            let mut out = Matrix::zeros(64, 64);
            gemm(1.0, &a, Trans::No, &a, Trans::Yes, 0.0, &mut out);
            out
        })
    });
    c.bench_function("linalg/potrf_64", |b| b.iter(|| potrf(&spd).expect("spd")));
    c.bench_function("linalg/qr_64x16", |b| {
        let m = Matrix::from_fn(64, 16, |i, j| ((i + 3 * j) as f64).cos());
        b.iter(|| qr_thin(&m))
    });
    c.bench_function("linalg/svd_32x16", |b| {
        let m = Matrix::from_fn(32, 16, |i, j| 1.0 / (1.0 + (i + j) as f64));
        b.iter(|| svd_jacobi(&m))
    });
}

fn tlr_compression(c: &mut Criterion) {
    let block = Matrix::from_fn(64, 64, |i, j| (-((i as f64 - j as f64) / 16.0).powi(2)).exp());
    c.bench_function("tlr/compress_64", |b| {
        b.iter(|| LrTile::compress(&block, 1e-8, 32))
    });
    let t = LrTile::compress(&block, 1e-8, 32);
    let w = Matrix::from_fn(64, 4, |i, j| ((i * 7 + j) as f64).sin());
    let z = Matrix::from_fn(64, 4, |i, j| ((i + j * 5) as f64).cos());
    c.bench_function("tlr/add_truncate_64_r4", |b| {
        b.iter(|| t.add_truncate(&w, &z, 1e-8, 32))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = des_event_throughput, fabric_message_rate, minimpi_matching,
              lci_op_issue, comm_engine_am_roundtrip, linalg_kernels,
              tlr_compression
}
criterion_main!(benches);
