//! Figure 5 + Table 2: TLR Cholesky strong scaling, 1 → 32 nodes.
//!
//! The problem size is fixed; the tile size shrinks as nodes are added to
//! keep enough parallelism. Three series, as in the paper:
//!   * LCI at its best tile size,
//!   * Open MPI at the *same* tile size LCI prefers,
//!   * Open MPI at its own best tile size ("Open MPI (best)").
//!
//! `-- --sweep` finds the best tile size per (backend, nodes) by sweeping
//! the Fig. 4 tile-size axis and prints Table 2 from the measurements;
//! the default uses the paper's Table 2 entries directly.

use amt_bench::table::{banner, cell, header, row};
use amt_bench::tlrrun::{run_tlr, TlrRunCfg, N_FULL, N_SCALED, TILE_SIZES};
use amt_bench::{backend_arg, full_scale, harness_args, ObsSink};
use amt_comm::BackendKind;

const NODE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Table 2 of the paper: tile size with the lowest time-to-solution.
const PAPER_BEST_MPI: [usize; 6] = [4500, 4500, 3600, 3000, 3000, 3000];
const PAPER_BEST_LCI: [usize; 6] = [4500, 4500, 3600, 3000, 2400, 1800];

fn main() {
    let args = harness_args();
    ObsSink::install(&args);
    let full = full_scale(&args);
    let sweep = args.iter().any(|a| a == "--sweep");
    let n = if full { N_FULL } else { N_SCALED };
    // `--backend lci-direct` swaps the §7 direct-put backend into the LCI
    // series; Open MPI stays the baseline either way.
    let lci_kind = match backend_arg(&args) {
        None => BackendKind::Lci,
        Some(BackendKind::Mpi) => {
            panic!("fig5 always includes the MPI baseline; pass --backend lci|lci-direct")
        }
        Some(b) => b,
    };

    println!("TLR Cholesky strong scaling, N = {n}, maxrank 150, acc 1e-8, band 1");
    println!("LCI series backend: {lci_kind}");

    let best_for = |backend: BackendKind, nodes: usize, fallback: usize| -> (usize, f64) {
        if sweep {
            TILE_SIZES
                .iter()
                .map(|&ts| {
                    let r = run_tlr(&TlrRunCfg {
                        backend,
                        nodes,
                        n,
                        tile_size: ts,
                        multithread_am: false,
                    });
                    (ts, r.tts_s)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty sweep")
        } else {
            let r = run_tlr(&TlrRunCfg {
                backend,
                nodes,
                n,
                tile_size: fallback,
                multithread_am: false,
            });
            (fallback, r.tts_s)
        }
    };

    let mut table2: Vec<(usize, usize, usize)> = Vec::new();
    let mut rows = Vec::new();
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let (lci_ts, lci_tts) = best_for(lci_kind, nodes, PAPER_BEST_LCI[i]);
        let (mpi_best_ts, mpi_best_tts) = best_for(BackendKind::Mpi, nodes, PAPER_BEST_MPI[i]);
        // MPI at LCI's tile size.
        let mpi_at_lci = if mpi_best_ts == lci_ts {
            mpi_best_tts
        } else {
            run_tlr(&TlrRunCfg {
                backend: BackendKind::Mpi,
                nodes,
                n,
                tile_size: lci_ts,
                multithread_am: false,
            })
            .tts_s
        };
        // Latency series at LCI's tile size.
        let lci_lat = run_tlr(&TlrRunCfg {
            backend: lci_kind,
            nodes,
            n,
            tile_size: lci_ts,
            multithread_am: false,
        })
        .req_us;
        let mpi_lat = run_tlr(&TlrRunCfg {
            backend: BackendKind::Mpi,
            nodes,
            n,
            tile_size: lci_ts,
            multithread_am: false,
        })
        .req_us;
        table2.push((nodes, mpi_best_ts, lci_ts));
        rows.push((
            nodes,
            lci_ts,
            lci_tts,
            mpi_at_lci,
            mpi_best_ts,
            mpi_best_tts,
            lci_lat,
            mpi_lat,
        ));
    }

    banner("Figure 5a: time-to-solution (s)");
    header(&[
        ("nodes", 6),
        ("LCI", 9),
        ("Open MPI", 9),
        ("MPI(best)", 10),
        ("LCI ts", 7),
        ("MPI ts", 7),
    ]);
    for &(nodes, lci_ts, lci_tts, mpi_at_lci, mpi_ts, mpi_best, _, _) in &rows {
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{lci_tts:.3}"), 9),
            cell(format!("{mpi_at_lci:.3}"), 9),
            cell(format!("{mpi_best:.3}"), 10),
            cell(format!("{lci_ts}"), 7),
            cell(format!("{mpi_ts}"), 7),
        ]);
    }

    banner("Figure 5b: mean control-path communication latency (us), at LCI's tile size");
    header(&[("nodes", 6), ("LCI", 9), ("Open MPI", 9)]);
    for &(nodes, _, _, _, _, _, lci_lat, mpi_lat) in &rows {
        if nodes == 1 {
            continue; // no inter-node communication
        }
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{lci_lat:.1}"), 9),
            cell(format!("{mpi_lat:.1}"), 9),
        ]);
    }

    banner("Table 2: tile size with lowest time-to-solution");
    header(&[("nodes", 6), ("Open MPI", 9), ("LCI", 9)]);
    for &(nodes, mpi_ts, lci_ts) in &table2 {
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{mpi_ts}"), 9),
            cell(format!("{lci_ts}"), 9),
        ]);
    }
    if !sweep {
        println!();
        println!("(tile sizes taken from the paper's Table 2; run with -- --sweep to re-derive)");
    }
}
