//! Figure 5 + Table 2: TLR Cholesky strong scaling, 1 → 32 nodes.
//!
//! The problem size is fixed; the tile size shrinks as nodes are added to
//! keep enough parallelism. Three series, as in the paper:
//!   * LCI at its best tile size,
//!   * Open MPI at the *same* tile size LCI prefers,
//!   * Open MPI at its own best tile size ("Open MPI (best)").
//!
//! `-- --sweep` finds the best tile size per (backend, nodes) by sweeping
//! the Fig. 4 tile-size axis and prints Table 2 from the measurements;
//! the default uses the paper's Table 2 entries directly.

use amt_bench::table::{banner, cell, header, row};
use amt_bench::tlrrun::{run_tlr, TlrRunCfg, TlrRunResult, N_FULL, N_SCALED, TILE_SIZES};
use amt_bench::{
    backend_arg, comm_tuning_args, full_scale, harness_args, jobs_arg, run_sweep, ObsSink,
};
use amt_comm::BackendKind;

const NODE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Table 2 of the paper: tile size with the lowest time-to-solution.
const PAPER_BEST_MPI: [usize; 6] = [4500, 4500, 3600, 3000, 3000, 3000];
const PAPER_BEST_LCI: [usize; 6] = [4500, 4500, 3600, 3000, 2400, 1800];

fn main() {
    let args = harness_args();
    ObsSink::install(&args);
    let full = full_scale(&args);
    let sweep = args.iter().any(|a| a == "--sweep");
    let n = if full { N_FULL } else { N_SCALED };
    // `--backend lci-direct` swaps the §7 direct-put backend into the LCI
    // series; Open MPI stays the baseline either way.
    let lci_kind = match backend_arg(&args) {
        None => BackendKind::Lci,
        Some(BackendKind::Mpi) => {
            panic!("fig5 always includes the MPI baseline; pass --backend lci|lci-direct")
        }
        Some(b) => b,
    };

    // Message-layer tuning knobs (`--batch-bytes`, `--batch-window-ns`,
    // `--multicast-k`) select the ablation series: the LCI backend re-run
    // at its chosen tile sizes with the knobs applied, reported as an
    // extra column against the flat defaults.
    let tuning = comm_tuning_args(&args);

    println!("TLR Cholesky strong scaling, N = {n}, maxrank 150, acc 1e-8, band 1");
    println!("LCI series backend: {lci_kind}");
    if !tuning.is_default() {
        println!("ablation series: {}", tuning.describe());
    }

    let jobs = jobs_arg(&args);
    let cfg_of = |backend: BackendKind, nodes: usize, ts: usize| TlrRunCfg {
        backend,
        nodes,
        n,
        tile_size: ts,
        multithread_am: false,
        tuning: Default::default(),
    };

    // Phase 1: the per-(backend, nodes) tile-size candidates — the full
    // Fig. 4 axis under `--sweep`, otherwise the paper's Table 2 entry —
    // swept in parallel across `--jobs` workers. Every run is a pure
    // function of its configuration, so results can be reused wherever the
    // same point is needed again and the output matches the sequential
    // (re-running) harness byte for byte.
    let mut phase1: Vec<TlrRunCfg> = Vec::new();
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        for (backend, fallback) in [
            (lci_kind, PAPER_BEST_LCI[i]),
            (BackendKind::Mpi, PAPER_BEST_MPI[i]),
        ] {
            if sweep {
                phase1.extend(TILE_SIZES.iter().map(|&ts| cfg_of(backend, nodes, ts)));
            } else {
                phase1.push(cfg_of(backend, nodes, fallback));
            }
        }
    }
    let results1 = run_sweep(&phase1, jobs, run_tlr);
    let lookup = |pool: &[(TlrRunCfg, TlrRunResult)], backend, nodes, ts| -> Option<TlrRunResult> {
        pool.iter()
            .find(|(c, _)| c.backend == backend && c.nodes == nodes && c.tile_size == ts)
            .map(|(_, r)| r.clone())
    };
    let pool1: Vec<(TlrRunCfg, TlrRunResult)> = phase1.into_iter().zip(results1).collect();
    let best_for = |backend: BackendKind, nodes: usize| -> (usize, f64) {
        pool1
            .iter()
            .filter(|(c, _)| c.backend == backend && c.nodes == nodes)
            .map(|(c, r)| (c.tile_size, r.tts_s))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("phase 1 covered this (backend, nodes)")
    };

    // Phase 2: points that depend on LCI's chosen tile size (MPI at that
    // size) and were not already covered by phase 1.
    let mut phase2: Vec<TlrRunCfg> = Vec::new();
    for &nodes in &NODE_COUNTS {
        let (lci_ts, _) = best_for(lci_kind, nodes);
        if lookup(&pool1, BackendKind::Mpi, nodes, lci_ts).is_none() {
            phase2.push(cfg_of(BackendKind::Mpi, nodes, lci_ts));
        }
    }
    let results2 = run_sweep(&phase2, jobs, run_tlr);
    let pool2: Vec<(TlrRunCfg, TlrRunResult)> = phase2.into_iter().zip(results2).collect();

    // Ablation phase: the LCI series again at its chosen tile sizes, with
    // the tuning knobs overlaid (skipped entirely when no knob is active,
    // keeping the default output byte-identical to the knobless harness).
    let tuned: Vec<TlrRunCfg> = if tuning.is_default() {
        Vec::new()
    } else {
        NODE_COUNTS
            .iter()
            .map(|&nodes| TlrRunCfg {
                tuning: tuning.clone(),
                ..cfg_of(lci_kind, nodes, best_for(lci_kind, nodes).0)
            })
            .collect()
    };
    let tuned_results = run_sweep(&tuned, jobs, run_tlr);
    let tuned_pool: Vec<(TlrRunCfg, TlrRunResult)> = tuned.into_iter().zip(tuned_results).collect();

    let mut table2: Vec<(usize, usize, usize)> = Vec::new();
    let mut rows = Vec::new();
    for &nodes in &NODE_COUNTS {
        let (lci_ts, lci_tts) = best_for(lci_kind, nodes);
        let (mpi_best_ts, mpi_best_tts) = best_for(BackendKind::Mpi, nodes);
        let mpi_at_lci_run = lookup(&pool1, BackendKind::Mpi, nodes, lci_ts)
            .or_else(|| lookup(&pool2, BackendKind::Mpi, nodes, lci_ts))
            .expect("phase 2 covered MPI at LCI's tile size");
        // Latency series at LCI's tile size.
        let lci_lat = lookup(&pool1, lci_kind, nodes, lci_ts)
            .expect("phase 1 covered LCI at its best tile size")
            .req_us;
        let mpi_lat = mpi_at_lci_run.req_us;
        table2.push((nodes, mpi_best_ts, lci_ts));
        rows.push((
            nodes,
            lci_ts,
            lci_tts,
            mpi_at_lci_run.tts_s,
            mpi_best_ts,
            mpi_best_tts,
            lci_lat,
            mpi_lat,
        ));
    }

    banner("Figure 5a: time-to-solution (s)");
    header(&[
        ("nodes", 6),
        ("LCI", 9),
        ("Open MPI", 9),
        ("MPI(best)", 10),
        ("LCI ts", 7),
        ("MPI ts", 7),
    ]);
    for &(nodes, lci_ts, lci_tts, mpi_at_lci, mpi_ts, mpi_best, _, _) in &rows {
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{lci_tts:.3}"), 9),
            cell(format!("{mpi_at_lci:.3}"), 9),
            cell(format!("{mpi_best:.3}"), 10),
            cell(format!("{lci_ts}"), 7),
            cell(format!("{mpi_ts}"), 7),
        ]);
    }

    banner("Figure 5b: mean control-path communication latency (us), at LCI's tile size");
    header(&[("nodes", 6), ("LCI", 9), ("Open MPI", 9)]);
    for &(nodes, _, _, _, _, _, lci_lat, mpi_lat) in &rows {
        if nodes == 1 {
            continue; // no inter-node communication
        }
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{lci_lat:.1}"), 9),
            cell(format!("{mpi_lat:.1}"), 9),
        ]);
    }

    if !tuned_pool.is_empty() {
        banner(&format!("Ablation: LCI series with {}", tuning.describe()));
        header(&[
            ("nodes", 6),
            ("flat", 9),
            ("tuned", 9),
            ("speedup", 8),
            ("lat flat", 9),
            ("lat tuned", 10),
        ]);
        for &(nodes, _, lci_tts, _, _, _, lci_lat, _) in &rows {
            let t = tuned_pool
                .iter()
                .find(|(c, _)| c.nodes == nodes)
                .map(|(_, r)| r)
                .expect("ablation covered every node count");
            row(&[
                cell(format!("{nodes}"), 6),
                cell(format!("{lci_tts:.3}"), 9),
                cell(format!("{:.3}", t.tts_s), 9),
                cell(format!("{:.2}x", lci_tts / t.tts_s), 8),
                cell(format!("{lci_lat:.1}"), 9),
                cell(format!("{:.1}", t.req_us), 10),
            ]);
        }
    }

    banner("Table 2: tile size with lowest time-to-solution");
    header(&[("nodes", 6), ("Open MPI", 9), ("LCI", 9)]);
    for &(nodes, mpi_ts, lci_ts) in &table2 {
        row(&[
            cell(format!("{nodes}"), 6),
            cell(format!("{mpi_ts}"), 9),
            cell(format!("{lci_ts}"), 9),
        ]);
    }
    if !sweep {
        println!();
        println!("(tile sizes taken from the paper's Table 2; run with -- --sweep to re-derive)");
    }
}
