//! Table 1: hardware and software configuration — printed for the
//! *simulated* platform, side by side with the paper's real one.

use amt_comm::EngineConfig;
use amt_core::CostModel;
use amt_netmodel::FabricConfig;

fn main() {
    let fab = FabricConfig::expanse(2);
    let eng = EngineConfig::default();
    let cost = CostModel::default();

    println!("Table 1: simulated platform configuration (paper values in parentheses)");
    println!("------------------------------------------------------------------------");
    println!("CPU               modelled EPYC 7742-class   (2x AMD EPYC 7742)");
    println!(
        "Cores             128 @ {} GFLOP/s DP/core   (128 @ 2.25 GHz)",
        cost.gflops_per_worker
    );
    println!(
        "NIC bandwidth     {} Gbit/s per direction    (2x 50 Gb/s HDR InfiniBand)",
        fab.nic_bandwidth_gbps
    );
    println!(
        "Wire latency      {}                      (hybrid fat tree, ~1 us class)",
        fab.wire_latency
    );
    println!(
        "NIC msg overhead  {} per message, {} per {}-KiB chunk",
        fab.per_message_overhead,
        fab.per_chunk_overhead,
        fab.chunk_bytes / 1024
    );
    println!("Backends          MiniMPI (Open MPI 4.1.5/UCX model) | LCI (v1.7 model)");
    println!(
        "MPI backend       {} persistent recvs/tag, {} concurrent transfers",
        eng.am_recv_depth, eng.max_concurrent_transfers
    );
    println!(
        "LCI backend       progress thread on own core, {} AM completions/round,",
        eng.am_batch
    );
    println!(
        "                  eager puts <= {} B, AM aggregation <= {} B",
        eng.eager_put_max, eng.agg_max_bytes
    );
    println!(
        "Task overhead     {}  (scheduling cost per task)",
        cost.task_overhead
    );
    println!("Workers/node      127 (MPI) / 126 (LCI) on multi-node runs; 128 single-node");
}
