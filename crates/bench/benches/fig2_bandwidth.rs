//! Figure 2: PaRSEC windowed ping-pong bandwidth vs. task granularity.
//!
//! * Fig. 2a — one stream, synchronized; NetPIPE raw-fabric baseline.
//! * Fig. 2b — two streams, synchronized and unsynchronized.
//!
//! Also prints the §6.2 headline numbers: the granularity at which each
//! backend falls below ~64 and ~45 Gbit/s and the resulting
//! "LCI supports ~2.8× smaller tasks at similar efficiency" ratio.
//!
//! Scaled by default (fewer iterations and a pruned small-size tail); pass
//! `-- --full` for the paper's full ladder.

use amt_bench::pingpong::{run_pingpong, PingPongCfg};
use amt_bench::table::{banner, cell, header, row};
use amt_bench::{fmt_size, full_scale, granularities, harness_args};
use amt_comm::BackendKind;
use amt_netmodel::{raw_pingpong_gbps, FabricConfig};

fn crossing(series: &[(usize, f64)], level: f64) -> Option<usize> {
    // Largest granularity at which the series is at or below `level`
    // (series ascending in size, bandwidth increasing).
    series
        .iter()
        .filter(|(_, bw)| *bw <= level)
        .map(|(n, _)| *n)
        .max()
}

fn main() {
    let args = harness_args();
    let full = full_scale(&args);
    let iters = if full { 8 } else { 5 };
    let min = if full { 8 * 1024 } else { 16 * 1024 };
    let sizes = granularities(min);

    banner("Figure 2a: ping-pong bandwidth, one stream (Gbit/s)");
    header(&[
        ("granularity", 12),
        ("window", 8),
        ("LCI", 8),
        ("Open MPI", 9),
        ("NetPIPE", 8),
    ]);
    let mut lci_series = Vec::new();
    let mut mpi_series = Vec::new();
    for &n in &sizes {
        let cfg = PingPongCfg::bandwidth(n, 1, true, iters);
        let lci = run_pingpong(BackendKind::Lci, &cfg).gbit_per_s;
        let mpi = run_pingpong(BackendKind::Mpi, &cfg).gbit_per_s;
        let netpipe = raw_pingpong_gbps(&FabricConfig::expanse(2), n, 8);
        lci_series.push((n, lci));
        mpi_series.push((n, mpi));
        row(&[
            cell(fmt_size(n), 12),
            cell(format!("{}", cfg.window), 8),
            cell(format!("{lci:.1}"), 8),
            cell(format!("{mpi:.1}"), 9),
            cell(format!("{netpipe:.1}"), 8),
        ]);
    }

    banner("§6.2 headline: granularity sustaining similar efficiency");
    for (name, level) in [("~64 Gbit/s", 64.0), ("~45 Gbit/s", 45.0)] {
        let l = crossing(&lci_series, level);
        let m = crossing(&mpi_series, level);
        match (l, m) {
            (Some(l), Some(m)) => {
                println!(
                    "{name}: MPI falls below at {}, LCI at {} -> LCI tasks {:.2}x smaller \
                     (paper: 2.83x at similar efficiency)",
                    fmt_size(m),
                    fmt_size(l),
                    m as f64 / l as f64
                );
            }
            _ => println!("{name}: no crossing within the measured range"),
        }
    }

    banner("Figure 2b: ping-pong bandwidth, two streams (Gbit/s)");
    header(&[
        ("granularity", 12),
        ("LCI", 8),
        ("Open MPI", 9),
        ("LCI nosync", 11),
        ("MPI nosync", 11),
    ]);
    for &n in &sizes {
        let sync_cfg = PingPongCfg::bandwidth(n, 2, true, iters);
        let nosync_cfg = PingPongCfg::bandwidth(n, 2, false, iters);
        let lci = run_pingpong(BackendKind::Lci, &sync_cfg).gbit_per_s;
        let mpi = run_pingpong(BackendKind::Mpi, &sync_cfg).gbit_per_s;
        let lci_ns = run_pingpong(BackendKind::Lci, &nosync_cfg).gbit_per_s;
        let mpi_ns = run_pingpong(BackendKind::Mpi, &nosync_cfg).gbit_per_s;
        row(&[
            cell(fmt_size(n), 12),
            cell(format!("{lci:.1}"), 8),
            cell(format!("{mpi:.1}"), 9),
            cell(format!("{lci_ns:.1}"), 11),
            cell(format!("{mpi_ns:.1}"), 11),
        ]);
    }
    println!();
    println!(
        "note: the paper's two-stream queueing anomaly (streams drifting into the same\n\
         direction under tight synchronization) is a stochastic effect; the deterministic\n\
         simulation keeps the streams anti-phased, so the synchronized two-stream series\n\
         stays near peak instead of dipping. The no-sync recovery it reports is\n\
         reproduced trivially (both no-sync series reach full duplex)."
    );
}
