//! Figure 2: PaRSEC windowed ping-pong bandwidth vs. task granularity.
//!
//! * Fig. 2a — one stream, synchronized; NetPIPE raw-fabric baseline.
//! * Fig. 2b — two streams, synchronized and unsynchronized.
//!
//! Also prints the §6.2 headline numbers: the granularity at which each
//! backend falls below ~64 and ~45 Gbit/s and the resulting
//! "LCI supports ~2.8× smaller tasks at similar efficiency" ratio, plus the
//! §7 direct-put knee comparison when both LCI variants are measured.
//!
//! Scaled by default (fewer iterations and a pruned small-size tail); pass
//! `-- --full` for the paper's full ladder. Pass `-- --backend <mpi|lci|
//! lci-direct>` to restrict the run to one backend (`lci-direct` keeps the
//! plain LCI series as the handshake baseline for the knee comparison).

use amt_bench::pingpong::{run_pingpong, PingPongCfg};
use amt_bench::table::{banner, cell, header, row};
use amt_bench::{
    backend_arg, fmt_size, full_scale, granularities, harness_args, jobs_arg, run_sweep, ObsSink,
};
use amt_comm::BackendKind;
use amt_netmodel::{raw_pingpong_gbps, FabricConfig};

fn label(b: BackendKind) -> &'static str {
    match b {
        BackendKind::Mpi => "Open MPI",
        BackendKind::Lci => "LCI",
        BackendKind::LciDirect => "LCI direct",
    }
}

fn crossing(series: &[(usize, f64)], level: f64) -> Option<usize> {
    // Largest granularity at which the series is at or below `level`
    // (series ascending in size, bandwidth increasing).
    series
        .iter()
        .filter(|(_, bw)| *bw <= level)
        .map(|(n, _)| *n)
        .max()
}

fn main() {
    let args = harness_args();
    ObsSink::install(&args);
    let full = full_scale(&args);
    let iters = if full { 8 } else { 5 };
    let min = if full { 8 * 1024 } else { 16 * 1024 };
    let sizes = granularities(min);

    let backends: Vec<BackendKind> = match backend_arg(&args) {
        // The direct-put curve is only meaningful against the handshake
        // baseline, so keep plain LCI alongside for the knee comparison.
        Some(BackendKind::LciDirect) => vec![BackendKind::LciDirect, BackendKind::Lci],
        Some(b) => vec![b],
        None => vec![BackendKind::Lci, BackendKind::LciDirect, BackendKind::Mpi],
    };

    banner("Figure 2a: ping-pong bandwidth, one stream (Gbit/s)");
    let mut cols = vec![("granularity", 12), ("window", 8)];
    for &b in &backends {
        cols.push((label(b), 10));
    }
    cols.push(("NetPIPE", 8));
    header(&cols);

    // Sweep all (size, backend) points across `--jobs` workers, then print
    // in configuration order (output is identical for any job count).
    let jobs = jobs_arg(&args);
    let points: Vec<(usize, BackendKind)> = sizes
        .iter()
        .flat_map(|&n| backends.iter().map(move |&b| (n, b)))
        .collect();
    let bws = run_sweep(&points, jobs, |&(n, b)| {
        run_pingpong(b, &PingPongCfg::bandwidth(n, 1, true, iters)).gbit_per_s
    });
    let mut series: Vec<(BackendKind, Vec<(usize, f64)>)> =
        backends.iter().map(|&b| (b, Vec::new())).collect();
    for (&(n, b), &bw) in points.iter().zip(&bws) {
        series
            .iter_mut()
            .find(|(bb, _)| *bb == b)
            .expect("known backend")
            .1
            .push((n, bw));
    }
    for &n in &sizes {
        let cfg = PingPongCfg::bandwidth(n, 1, true, iters);
        let mut cells = vec![cell(fmt_size(n), 12), cell(format!("{}", cfg.window), 8)];
        for (_, s) in &series {
            let (_, bw) = s.iter().find(|(sn, _)| *sn == n).expect("swept size");
            cells.push(cell(format!("{bw:.1}"), 10));
        }
        let netpipe = raw_pingpong_gbps(&FabricConfig::expanse(2), n, 8);
        cells.push(cell(format!("{netpipe:.1}"), 8));
        row(&cells);
    }

    let find = |kind: BackendKind| {
        series
            .iter()
            .find(|(b, _)| *b == kind)
            .map(|(_, s)| s.as_slice())
    };

    banner("§6.2 headline: granularity sustaining similar efficiency");
    for (name, level) in [("~64 Gbit/s", 64.0), ("~45 Gbit/s", 45.0)] {
        for (b, s) in &series {
            match crossing(s, level) {
                Some(g) => println!("{name}: {} falls below at {}", label(*b), fmt_size(g)),
                None => println!("{name}: {} stays above in the measured range", label(*b)),
            }
        }
        if let (Some(l), Some(m)) = (
            find(BackendKind::Lci).and_then(|s| crossing(s, level)),
            find(BackendKind::Mpi).and_then(|s| crossing(s, level)),
        ) {
            println!(
                "{name}: LCI tasks {:.2}x smaller than MPI (paper: 2.83x at similar efficiency)",
                m as f64 / l as f64
            );
        }
    }

    if let (Some(hs), Some(direct)) = (find(BackendKind::Lci), find(BackendKind::LciDirect)) {
        banner("§7 knee: direct put vs handshake emulation");
        for (name, level) in [("~64 Gbit/s", 64.0), ("~45 Gbit/s", 45.0)] {
            let h = crossing(hs, level);
            let d = crossing(direct, level);
            println!(
                "{name}: handshake knee {}, direct-put knee {}",
                h.map_or("none".into(), fmt_size),
                d.map_or("none".into(), fmt_size),
            );
            assert!(
                d.unwrap_or(0) <= h.unwrap_or(0),
                "direct-put knee must sit at or below the handshake knee"
            );
        }
        let worst = hs
            .iter()
            .zip(direct)
            .map(|((n, h), (_, d))| (*n, d / h))
            .fold(
                (0usize, f64::INFINITY),
                |acc, x| {
                    if x.1 < acc.1 {
                        x
                    } else {
                        acc
                    }
                },
            );
        println!(
            "direct put is never slower than the handshake at any size \
             (worst ratio {:.3}x at {})",
            worst.1,
            fmt_size(worst.0)
        );
        assert!(
            worst.1 >= 1.0 - 1e-9,
            "direct put regressed below handshake bandwidth at {}",
            fmt_size(worst.0)
        );
    }

    banner("Figure 2b: ping-pong bandwidth, two streams (Gbit/s)");
    let mut cols = vec![("granularity", 12)];
    let mut nosync_names = Vec::new();
    for &b in &backends {
        cols.push((label(b), 10));
    }
    for &b in &backends {
        nosync_names.push(format!("{} nosync", label(b)));
    }
    for name in &nosync_names {
        cols.push((name.as_str(), 13));
    }
    header(&cols);
    let mut points2: Vec<(usize, bool, BackendKind)> = Vec::new();
    for &n in &sizes {
        for sync in [true, false] {
            for &b in &backends {
                points2.push((n, sync, b));
            }
        }
    }
    let bws2 = run_sweep(&points2, jobs, |&(n, sync, b)| {
        run_pingpong(b, &PingPongCfg::bandwidth(n, 2, sync, iters)).gbit_per_s
    });
    let mut it = bws2.iter();
    for &n in &sizes {
        let mut cells = vec![cell(fmt_size(n), 12)];
        for _ in &backends {
            cells.push(cell(format!("{:.1}", it.next().expect("sync point")), 10));
        }
        for _ in &backends {
            cells.push(cell(format!("{:.1}", it.next().expect("nosync point")), 13));
        }
        row(&cells);
    }
    println!();
    println!(
        "note: the paper's two-stream queueing anomaly (streams drifting into the same\n\
         direction under tight synchronization) is a stochastic effect; the deterministic\n\
         simulation keeps the streams anti-phased, so the synchronized two-stream series\n\
         stays near peak instead of dipping. The no-sync recovery it reports is\n\
         reproduced trivially (both no-sync series reach full duplex)."
    );
}
