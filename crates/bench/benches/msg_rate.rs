//! Message-rate benchmark → `BENCH_msgrate.json`.
//!
//! The paper's §5 scaling wall is *control-plane* message rate: the flat
//! per-consumer ACTIVATE unicast and the per-put GET traffic dominate at
//! high node counts. This bench measures what the engine-level AM batching
//! window and the multicast activation trees buy there: **control messages
//! on the wire** (AM sends across all engines — ACTIVATE, GET, COLL) and
//! **time to solution**, for three engine configurations of the same
//! workload:
//!
//! * `flat` — seed defaults: every record is its own wire message, every
//!   announce a direct unicast.
//! * `batched` — the per-(destination, tag) rate-limit window + byte
//!   threshold coalesce same-destination ACTIVATE/GET records into one
//!   message (cold links flush at their own instant, hot links at one
//!   message per window).
//! * `batched_tree` — batching plus k-ary multicast activation trees for
//!   wide fan-outs.
//!
//! Data puts are reported alongside (`data_puts`) but not folded into the
//! gated count: a put is the payload delivery itself — dataflow semantics
//! require one per consumer, so no control-plane mechanism can merge them;
//! they are bandwidth-bound, not injection-rate-bound.
//!
//! Two workloads: a wide-fan-out CostOnly TLR Cholesky (`tlr_wide` — panel
//! columns broadcast to the whole node row) and the 5-point stencil halo
//! exchange (`stencil`, narrow fan-out — the contrast case, where batching
//! finds little to coalesce). Everything runs in virtual time on the LCI
//! backend, so results are deterministic and repeat exactly.
//!
//! verify.sh gates on `tlr_wide`: `batched_tree` must put **≥ 2× fewer
//! control messages on the wire** than `flat` at **≤ 1.05× its time to
//! solution**.
//!
//! Flags: `--quick` (smoke sizes for CI), `--out <path>`.

use amt_bench::harness_args;
use amt_bench::stencil::build_stencil;
use amt_comm::BackendKind;
use amt_core::{Cluster, ClusterConfig, ExecMode, RunReport, TileDist2d};
use amt_tlr::{TlrCholesky, TlrProblem};

/// One engine configuration under measurement.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Flat,
    Batched,
    BatchedTree,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Flat, Mode::Batched, Mode::BatchedTree];

    fn slug(self) -> &'static str {
        match self {
            Mode::Flat => "flat",
            Mode::Batched => "batched",
            Mode::BatchedTree => "batched_tree",
        }
    }

    /// Overlay this mode's knobs on a base configuration. The 500 µs
    /// rate-limit window caps each hot link at one message per window;
    /// since cold links flush at their own instant, sporadic critical-path
    /// sends pay no latency and time to solution stays within noise of
    /// flat while sustained ACTIVATE/GET streams coalesce 2.5×+.
    fn configure(self, mut cfg: ClusterConfig) -> ClusterConfig {
        match self {
            Mode::Flat => {}
            Mode::Batched => {
                cfg.engine = cfg.engine.clone().with_batching(500_000, 8192);
            }
            Mode::BatchedTree => {
                cfg.engine = cfg.engine.clone().with_batching(500_000, 8192);
                cfg.bcast_tree_min = Some(2);
                cfg.multicast_k = Some(4);
            }
        }
        cfg
    }
}

/// Wire-level outcome of one run.
struct Measure {
    /// Control-plane AM messages put on the wire (ACTIVATE/GET/COLL).
    msgs_on_wire: u64,
    /// AM records submitted above the batching layer — identical across
    /// modes; `msgs_on_wire / records` is the coalescing factor.
    records_submitted: u64,
    /// Payload deliveries — one per consumer by dataflow semantics,
    /// identical across modes.
    data_puts: u64,
    tts_s: f64,
    tasks: u64,
}

fn measure(report: &RunReport) -> Measure {
    let mut msgs = 0u64;
    let mut recs = 0u64;
    let mut puts = 0u64;
    for s in &report.engine_stats {
        msgs += s.am_sent.get();
        recs += s.am_submitted.get();
        puts += s.puts_started.get();
    }
    Measure {
        msgs_on_wire: msgs,
        records_submitted: recs,
        data_puts: puts,
        tts_s: report.makespan.as_secs_f64(),
        tasks: report.tasks_executed,
    }
}

/// Wide-fan-out CostOnly TLR Cholesky: every panel column broadcasts to
/// the whole node set, the pattern the multicast trees target.
fn run_tlr_wide(mode: Mode, quick: bool) -> Measure {
    let (nodes, n, ts) = if quick {
        (8usize, 24_000, 500)
    } else {
        (16usize, 48_000, 500)
    };
    let problem = TlrProblem::new(n, ts);
    let (_, graph) = TlrCholesky::build_cost_only(problem, nodes);
    let cfg = mode.configure(ClusterConfig {
        mode: ExecMode::CostOnly,
        get_window_bytes: 2 << 20,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    });
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute(graph);
    assert!(report.complete(), "tlr_wide {} incomplete", mode.slug());
    measure(&report)
}

/// 5-point stencil halo exchange: nearest-neighbour dataflows, narrow
/// fan-out — batching territory, no wide broadcasts.
fn run_stencil(mode: Mode, quick: bool) -> Measure {
    let (nodes, tiles, sweeps) = if quick {
        (8usize, 12u64, 4u64)
    } else {
        (16usize, 16u64, 8u64)
    };
    let dist = TileDist2d::square_grid(tiles, tiles, nodes);
    let graph = build_stencil(tiles, 512, sweeps, &dist);
    let cfg = mode.configure(ClusterConfig {
        mode: ExecMode::CostOnly,
        ..ClusterConfig::expanse(BackendKind::Lci, nodes)
    });
    let mut cluster = Cluster::new(cfg);
    let report = cluster.execute(graph);
    assert!(report.complete(), "stencil {} incomplete", mode.slug());
    measure(&report)
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = {
        let mut it = args.iter();
        let mut path = String::from("BENCH_msgrate.json");
        while let Some(a) = it.next() {
            if a == "--out" {
                path = it.next().expect("--out requires a value").clone();
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = v.to_string();
            }
        }
        path
    };

    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-msgrate-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"scenarios\": {{\n"));

    type Runner = fn(Mode, bool) -> Measure;
    let scenarios: [(&str, Runner); 2] = [("tlr_wide", run_tlr_wide), ("stencil", run_stencil)];
    let n_scen = scenarios.len();
    for (si, (name, run)) in scenarios.into_iter().enumerate() {
        println!("== {name}: messages on the wire vs time to solution ==");
        let results: Vec<(Mode, Measure)> =
            Mode::ALL.into_iter().map(|m| (m, run(m, quick))).collect();
        let flat = &results[0].1;
        // Batching and trees must not change what is computed or delivered:
        // same tasks, same records, same payload deliveries, fewer messages.
        assert!(results.iter().all(|(_, r)| r.tasks == flat.tasks));
        assert!(results
            .iter()
            .all(|(_, r)| r.records_submitted == flat.records_submitted
                && r.data_puts == flat.data_puts));
        json.push_str(&format!("    \"{name}\": {{\n"));
        for (i, (mode, r)) in results.iter().enumerate() {
            let reduction = flat.msgs_on_wire as f64 / r.msgs_on_wire as f64;
            let time_ratio = r.tts_s / flat.tts_s;
            println!(
                "{:<13} {:>8} ctl msgs ({:>8} records, {:>7} puts)  tts {:>7.3} s   {:>5.2}x fewer msgs, {:>5.3}x time",
                mode.slug(),
                r.msgs_on_wire,
                r.records_submitted,
                r.data_puts,
                r.tts_s,
                reduction,
                time_ratio
            );
            json.push_str(&format!(
                "      \"{}\": {{\"msgs_on_wire\": {}, \"records_submitted\": {}, \"data_puts\": {}, \"tts_s\": {:.6}, \"reduction_vs_flat\": {:.3}, \"time_vs_flat\": {:.4}}}{}\n",
                mode.slug(),
                r.msgs_on_wire,
                r.records_submitted,
                r.data_puts,
                r.tts_s,
                reduction,
                time_ratio,
                if i + 1 == results.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if si + 1 == n_scen { "" } else { "," }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_msgrate.json");
    println!("wrote {out_path}");
}
