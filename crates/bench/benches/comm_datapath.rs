//! Comm-datapath budget benchmark → `BENCH_comm.json`.
//!
//! Two *deterministic* metric families (no wall-clock noise — the simulator
//! is single-threaded, so both repeat exactly):
//!
//! * **match_churn_{64,256,1024,4096}** — a match-table churn workload
//!   (mixed wildcard/specific receives, occasional cancels) driven through
//!   the hash-bucketed [`PostTable`] and the seed's linear-scan
//!   [`RefPostTable`] in lockstep, asserting identical outcomes. Reports
//!   comparisons-per-match for both: the hash matcher must stay flat as the
//!   outstanding-receive count grows while the reference grows linearly.
//!
//! * **am_flood / put_rendezvous** — full engine simulations per backend
//!   under a counting `#[global_allocator]`, reporting heap
//!   allocations-per-delivered-message in steady state (pools and slabs
//!   warmed by an identical untimed burst). verify.sh diffs these columns
//!   against the committed `BENCH_comm.json` to catch allocation
//!   regressions.
//!
//! Flags: `--quick` (smoke sizes for CI), `--out <path>`.

use amt_bench::alloc_count::{AllocSnapshot, CountingAlloc};
use amt_bench::harness_args;
use amt_comm::{BackendKind, CommWorld, EngineConfig, PutRequest};
use amt_minimpi::matcher::{PostTable, RefPostTable};
use amt_minimpi::SrcSel;
use amt_netmodel::{Fabric, FabricConfig};
use amt_simnet::rng::DetRng;
use amt_simnet::{Sim, SimTime};
use bytes::Bytes;
use std::rc::Rc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Comparisons-per-match for both matchers over one churn run.
struct ChurnResult {
    outstanding: usize,
    matches: u64,
    hash_cmp_per_match: f64,
    ref_cmp_per_match: f64,
}

/// Keep `outstanding` receives posted (one per tag; ~25% wildcard), then
/// churn: arrivals match a uniform-random tag and the consumed receive is
/// reposted; 5% of rounds cancel + repost instead (the reference pays an
/// O(n) `retain` there, the hash table a tombstone). Both tables run in
/// lockstep and must report identical matches and identical
/// reference-equivalent `scanned` counts.
fn match_churn(outstanding: usize, rounds: usize) -> ChurnResult {
    let mut hash = PostTable::new();
    let mut rf = RefPostTable::new();
    let mut rng = DetRng::seed_from_u64(0xc0ffee ^ outstanding as u64);
    let mut posted = Vec::with_capacity(outstanding);
    let post_both =
        |hash: &mut PostTable, rf: &mut RefPostTable, req: usize, src: SrcSel, tag: u64| {
            (hash.post(req, src, tag), rf.post(req, src, tag), src)
        };
    for i in 0..outstanding {
        let src = if rng.gen_bool(0.25) {
            SrcSel::Any
        } else {
            SrcSel::Rank(i % 8)
        };
        posted.push(post_both(&mut hash, &mut rf, i, src, i as u64));
    }
    for _ in 0..rounds {
        let tag = rng.gen_usize(0..outstanding);
        if rng.gen_bool(0.05) {
            let (ht, rt, src) = posted[tag];
            assert_eq!(hash.cancel(ht), rf.cancel(rt), "cancel outcome diverged");
            posted[tag] = post_both(&mut hash, &mut rf, tag, src, tag as u64);
            continue;
        }
        let src = tag % 8; // matches both Rank(tag % 8) and Any posts
        let h = hash.match_arrival(src, tag as u64);
        let r = rf.match_arrival(src, tag as u64);
        assert_eq!(h, r, "hash and reference matchers diverged");
        if h.found.is_some() {
            let (_, _, src_sel) = posted[tag];
            posted[tag] = post_both(&mut hash, &mut rf, tag, src_sel, tag as u64);
        }
    }
    assert_eq!(hash.len(), rf.len(), "table sizes diverged");
    ChurnResult {
        outstanding,
        matches: hash.match_calls(),
        hash_cmp_per_match: hash.comparisons() as f64 / hash.match_calls() as f64,
        ref_cmp_per_match: rf.comparisons() as f64 / rf.match_calls() as f64,
    }
}

fn backend_slug(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Mpi => "mpi",
        BackendKind::Lci => "lci",
        BackendKind::LciDirect => "lci_direct",
    }
}

/// Flood `msgs` 64-byte payload-carrying AMs through a 2-node engine and
/// report steady-state heap allocations per delivered message. Sends are
/// paced in virtual time (one per 5 µs) so each message traverses the full
/// per-message datapath — submission, wire framing, fabric chunking,
/// progress rounds, delivery — instead of collapsing into one aggregate.
/// The handler recycles arrival frames into the engine pool exactly as the
/// runtime's ACTIVATE consumer does.
fn am_flood(cfg: &EngineConfig, msgs: usize) -> f64 {
    let mut sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(2));
    let engines = CommWorld::create(&mut sim, &fabric, cfg.clone());
    engines[1].register_am(
        &mut sim,
        1,
        Rc::new(|_sim, eng, ev| {
            eng.buf_pool().recycle_frames(ev.data);
            SimTime::ZERO
        }),
    );
    let src = engines[0].clone();
    let burst = move |sim: &mut Sim, n: usize| {
        for i in 0..n {
            let src = src.clone();
            sim.schedule_in(SimTime::from_ns(5_000 * i as u64), move |sim| {
                let payload = Bytes::from(vec![i as u8; 64]);
                src.send_am(sim, 1, 1, 64, Some(payload));
            });
        }
        sim.run();
    };
    // Warm-up: grow event slabs, ladder rungs and the buffer pool once.
    burst(&mut sim, msgs);
    let received0 = engines[1].stats().am_received.get();
    let snap = AllocSnapshot::now();
    burst(&mut sim, msgs);
    let d = snap.since();
    let received = engines[1].stats().am_received.get() - received0;
    assert!(received >= msgs as u64 / 2, "flood mostly aggregated away");
    d.allocs as f64 / msgs as f64
}

/// Issue `puts` rendezvous-sized (256 KiB, cost-only) puts and report
/// steady-state heap allocations per remotely-completed put. Paced one per
/// 100 µs so the transfer window stays shallow — this measures the
/// per-put datapath, not back-pressure retry storms.
fn put_rendezvous(cfg: &EngineConfig, puts: usize) -> f64 {
    const SIZE: usize = 256 << 10;
    let mut sim = Sim::new();
    let fabric = Fabric::new(FabricConfig::expanse(2));
    let engines = CommWorld::create(&mut sim, &fabric, cfg.clone());
    engines[1].register_onesided(1, Rc::new(|_sim, _eng, _ev| SimTime::ZERO));
    let src = engines[0].clone();
    let burst = move |sim: &mut Sim, n: usize| {
        for i in 0..n {
            let src = src.clone();
            sim.schedule_in(SimTime::from_ns(100_000 * i as u64), move |sim| {
                src.put(
                    sim,
                    PutRequest {
                        dst: 1,
                        size: SIZE,
                        data: None,
                        r_tag: 1,
                        cb_data: Bytes::new(),
                        on_local: Box::new(|_s, _e| SimTime::ZERO),
                    },
                );
            });
        }
        sim.run();
    };
    burst(&mut sim, puts);
    let done0 = engines[1].stats().puts_remote_done.get();
    let snap = AllocSnapshot::now();
    burst(&mut sim, puts);
    let d = snap.since();
    let done = engines[1].stats().puts_remote_done.get() - done0;
    assert!(done > 0, "no puts completed");
    d.allocs as f64 / done as f64
}

fn main() {
    let args = harness_args();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = {
        let mut it = args.iter();
        let mut path = String::from("BENCH_comm.json");
        while let Some(a) = it.next() {
            if a == "--out" {
                path = it.next().expect("--out requires a value").clone();
            } else if let Some(v) = a.strip_prefix("--out=") {
                path = v.to_string();
            }
        }
        path
    };

    let churn_rounds = if quick { 2_000 } else { 20_000 };
    let flood_msgs = if quick { 1_024 } else { 8_192 };
    let put_count = if quick { 256 } else { 1_024 };

    println!("== match-table churn: hash vs reference comparisons/match ==");
    let mut churn = Vec::new();
    for outstanding in [64usize, 256, 1024, 4096] {
        let r = match_churn(outstanding, churn_rounds);
        println!(
            "match_churn_{:<5} hash {:>8.2} cmp/match   ref {:>10.2} cmp/match   ({} matches)",
            r.outstanding, r.hash_cmp_per_match, r.ref_cmp_per_match, r.matches
        );
        churn.push(r);
    }

    println!("== allocations per delivered message (steady state) ==");
    let backends = EngineConfig::all_backends();
    let mut flood = Vec::new();
    let mut rdv = Vec::new();
    for cfg in &backends {
        let f = am_flood(cfg, flood_msgs);
        let p = put_rendezvous(cfg, put_count);
        println!(
            "{:<12} am_flood {:>7.2} allocs/msg   put_rendezvous {:>7.2} allocs/put",
            backend_slug(cfg.backend),
            f,
            p
        );
        flood.push((backend_slug(cfg.backend), f));
        rdv.push((backend_slug(cfg.backend), p));
    }

    let mut json = String::from("{\n  \"schema\": \"amtlc-bench-comm-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"match_churn\": {\n");
    for (i, r) in churn.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"hash_cmp_per_match\": {:.3}, \"ref_cmp_per_match\": {:.3}, \"matches\": {}}}{}\n",
            r.outstanding,
            r.hash_cmp_per_match,
            r.ref_cmp_per_match,
            r.matches,
            if i + 1 == churn.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n  \"alloc_per_msg\": {\n");
    for (si, (name, series)) in [("am_flood", &flood), ("put_rendezvous", &rdv)]
        .into_iter()
        .enumerate()
    {
        json.push_str(&format!("    \"{name}\": {{"));
        for (i, (slug, v)) in series.iter().enumerate() {
            json.push_str(&format!(
                "\"{slug}\": {v:.3}{}",
                if i + 1 == series.len() { "" } else { ", " }
            ));
        }
        json.push_str(&format!("}}{}\n", if si == 0 { "," } else { "" }));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_comm.json");
    println!("wrote {out_path}");
}
