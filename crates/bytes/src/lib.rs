//! Minimal, dependency-free reimplementation of the subset of the `bytes`
//! crate API that this workspace uses.
//!
//! The container building this repository has no network access to a crates
//! registry, so external crates cannot be resolved. This shim keeps the
//! workspace self-contained while preserving the familiar `bytes` idioms
//! (`Bytes` as a cheaply-clonable immutable buffer, `BytesMut` + `freeze`,
//! and the little-endian cursor methods from `Buf`/`BufMut`).
//!
//! Semantics match the real crate for the operations implemented here:
//! `Bytes` is an `Arc<[u8]>` window (clone is O(1), `split_to` advances the
//! window without copying), and the `Buf` getters consume from the front.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer: a view into shared storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a static slice (copied once into shared storage;
    /// the real crate borrows, but callers only rely on value semantics).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// No copy: both halves share the backing storage.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a sub-view of `self` (like `Bytes::slice` in the real crate).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer; `freeze` converts it into an immutable `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.buf.clone()).fmt(f)
    }
}

/// Read cursor over a byte source. Getters consume from the front and panic
/// if the source is exhausted (matching the real crate's behaviour).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Discards the first `n` unread bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink in little-endian order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(head.len() + b.len(), 5);
    }

    #[test]
    fn le_roundtrip_through_buf_traits() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16_le(0xbeef);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(0x0123_4567_89ab_cdef);
        m.put_i64_le(-42);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xbeef);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(&b[..], b"xyz");
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn equality_and_clone_are_by_value() {
        let a = Bytes::from(vec![9u8; 16]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8; 16]);
        assert!(Bytes::new().is_empty());
    }
}
