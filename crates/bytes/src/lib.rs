//! Minimal, dependency-free reimplementation of the subset of the `bytes`
//! crate API that this workspace uses.
//!
//! The container building this repository has no network access to a crates
//! registry, so external crates cannot be resolved. This shim keeps the
//! workspace self-contained while preserving the familiar `bytes` idioms
//! (`Bytes` as a cheaply-clonable immutable buffer, `BytesMut` + `freeze`,
//! and the little-endian cursor methods from `Buf`/`BufMut`).
//!
//! Semantics match the real crate for the operations implemented here:
//! `Bytes` is a window into shared storage (clone is O(1), `split_to` /
//! `split_off` move the window without copying), `from_static` borrows the
//! static slice without allocating, and the `Buf` getters consume from the
//! front.
//!
//! Two additions go beyond the real crate, in service of the zero-copy comm
//! datapath (DESIGN.md §11):
//!
//! * [`BufPool`] — a per-node free list of backing `Vec<u8>` buffers.
//!   Encoders take a [`BytesMut`] from the pool; consumers that fully own a
//!   `Bytes` at the end of its life hand it back with [`BufPool::recycle`],
//!   which reclaims the storage only when the refcount proves exclusivity.
//! * [`Frames`] — an ordered list of `Bytes` representing one wire message
//!   assembled from several submissions (AM aggregation). Delivering the
//!   frame list instead of a concatenated copy removes the per-message
//!   copy + allocation that `concat` paid.

use std::cell::RefCell;
use std::ops::Deref;
use std::sync::Arc;

/// Backing storage of a [`Bytes`] window.
#[derive(Clone)]
enum Repr {
    /// Borrowed static data: no allocation, no refcount.
    Static(&'static [u8]),
    /// Shared heap storage. `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `freeze`
    /// never shrink-copies and [`Bytes::try_reclaim`] can recover the `Vec`
    /// for pooling.
    Shared(Arc<Vec<u8>>),
}

/// Cheaply clonable immutable byte buffer: a view into shared storage.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates an empty `Bytes` (no allocation).
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Creates `Bytes` borrowing a static slice. No allocation.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// No copy: both halves share the backing storage.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            repr: self.repr.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onwards; `self` keeps the
    /// first `at` bytes. No copy: both halves share the backing storage.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            repr: self.repr.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Returns a sub-view of `self` (like `Bytes::slice` in the real crate).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            repr: self.repr.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the backing `Vec<u8>` (cleared) when this view is the sole
    /// owner of heap storage; otherwise returns the `Bytes` unchanged.
    /// Static-backed views are never reclaimable.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let (start, end) = (self.start, self.end);
        match self.repr {
            Repr::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(mut v) => {
                    v.clear();
                    Ok(v)
                }
                Err(arc) => Err(Bytes {
                    repr: Repr::Shared(arc),
                    start,
                    end,
                }),
            },
            r @ Repr::Static(_) => Err(Bytes {
                repr: r,
                start,
                end,
            }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer; `freeze` converts it into an immutable `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts into an immutable `Bytes` without copying (spare capacity
    /// is kept with the storage so pooled buffers survive round trips).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.buf.clone()).fmt(f)
    }
}

/// A free list of backing buffers for encode/decode round trips.
///
/// Not a slab and not reference-counted itself: producers call [`take`]
/// (which pops a recycled buffer or allocates a fresh one) and consumers
/// call [`recycle`] when a `Bytes` reaches the end of its life. `recycle`
/// only reclaims storage it can prove exclusive via the refcount; shared
/// buffers are silently dropped, so recycling is always safe and never
/// affects observable values.
///
/// [`take`]: BufPool::take
/// [`recycle`]: BufPool::recycle
pub struct BufPool {
    bufs: RefCell<Vec<Vec<u8>>>,
    max_bufs: usize,
}

impl BufPool {
    /// A pool keeping at most `max_bufs` free buffers.
    pub fn new(max_bufs: usize) -> Self {
        BufPool {
            bufs: RefCell::new(Vec::new()),
            max_bufs,
        }
    }

    /// Pops a recycled buffer (growing it to `min_capacity` if needed) or
    /// allocates a fresh one.
    pub fn take(&self, min_capacity: usize) -> BytesMut {
        match self.bufs.borrow_mut().pop() {
            Some(mut v) => {
                v.reserve(min_capacity);
                BytesMut::from(v)
            }
            None => BytesMut::with_capacity(min_capacity),
        }
    }

    /// Returns a buffer's storage to the pool if `b` is its sole owner.
    /// Reports whether the storage was reclaimed.
    pub fn recycle(&self, b: Bytes) -> bool {
        if let Ok(v) = b.try_reclaim() {
            let mut bufs = self.bufs.borrow_mut();
            if bufs.len() < self.max_bufs {
                bufs.push(v);
                return true;
            }
        }
        false
    }

    /// Recycles every frame of `frames`; returns how many were reclaimed.
    pub fn recycle_frames(&self, frames: Frames) -> usize {
        let mut n = 0;
        match frames {
            Frames::Empty => {}
            Frames::One(b) => n += usize::from(self.recycle(b)),
            Frames::Many(v) => {
                for b in v {
                    n += usize::from(self.recycle(b));
                }
            }
        }
        n
    }

    /// Returns an unfrozen buffer directly (e.g. an encode that was
    /// abandoned before `freeze`).
    pub fn put_back(&self, mut b: BytesMut) {
        let mut bufs = self.bufs.borrow_mut();
        if bufs.len() < self.max_bufs {
            b.buf.clear();
            bufs.push(b.buf);
        }
    }

    /// Number of free buffers currently pooled.
    pub fn free_len(&self) -> usize {
        self.bufs.borrow().len()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BufPool {{ free: {}, max: {} }}",
            self.free_len(),
            self.max_bufs
        )
    }
}

/// Thread-safe [`BufPool`]: the same recycle-if-sole-owner protocol behind
/// a `Mutex`, for the real-thread execution path where senders and
/// receivers live on different OS threads. Tracks pool hits and misses so
/// runs can report steady-state buffer reuse.
pub struct SharedBufPool {
    bufs: std::sync::Mutex<Vec<Vec<u8>>>,
    max_bufs: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl SharedBufPool {
    /// A pool keeping at most `max_bufs` free buffers.
    pub fn new(max_bufs: usize) -> Self {
        SharedBufPool {
            bufs: std::sync::Mutex::new(Vec::new()),
            max_bufs,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Pops a recycled buffer (growing it to `min_capacity` if needed) or
    /// allocates a fresh one.
    pub fn take(&self, min_capacity: usize) -> BytesMut {
        use std::sync::atomic::Ordering::Relaxed;
        match self.bufs.lock().expect("shared buf pool").pop() {
            Some(mut v) => {
                self.hits.fetch_add(1, Relaxed);
                v.reserve(min_capacity);
                BytesMut::from(v)
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                BytesMut::with_capacity(min_capacity)
            }
        }
    }

    /// Returns a buffer's storage to the pool if `b` is its sole owner.
    /// Reports whether the storage was reclaimed.
    pub fn recycle(&self, b: Bytes) -> bool {
        if let Ok(v) = b.try_reclaim() {
            let mut bufs = self.bufs.lock().expect("shared buf pool");
            if bufs.len() < self.max_bufs {
                bufs.push(v);
                return true;
            }
        }
        false
    }

    /// Recycles every frame of `frames`; returns how many were reclaimed.
    pub fn recycle_frames(&self, frames: Frames) -> usize {
        let mut n = 0;
        match frames {
            Frames::Empty => {}
            Frames::One(b) => n += usize::from(self.recycle(b)),
            Frames::Many(v) => {
                for b in v {
                    n += usize::from(self.recycle(b));
                }
            }
        }
        n
    }

    /// Number of free buffers currently pooled.
    pub fn free_len(&self) -> usize {
        self.bufs.lock().expect("shared buf pool").len()
    }

    /// `(takes served from the pool, takes that had to allocate)`.
    pub fn reuse_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }
}

impl std::fmt::Debug for SharedBufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedBufPool {{ free: {}, max: {} }}",
            self.free_len(),
            self.max_bufs
        )
    }
}

/// An ordered list of payload frames making up one wire message.
///
/// Aggregated active messages are submitted as several independent payloads
/// that travel as one fabric message. `Frames` preserves the submission
/// boundaries so the receiver can decode frame-by-frame with **zero**
/// copies; the common one-payload case stays a single `Bytes` with no list
/// allocation, and cost-only messages are `Empty`.
#[derive(Clone, Default, PartialEq, Eq)]
pub enum Frames {
    /// No payload (cost-only message).
    #[default]
    Empty,
    /// Exactly one payload frame — the common, allocation-free case.
    One(Bytes),
    /// Two or more frames, in submission order.
    Many(Vec<Bytes>),
}

impl Frames {
    /// Creates an empty frame list.
    pub fn new() -> Self {
        Frames::Empty
    }

    /// Appends a frame.
    pub fn push(&mut self, b: Bytes) {
        match std::mem::take(self) {
            Frames::Empty => *self = Frames::One(b),
            Frames::One(first) => *self = Frames::Many(vec![first, b]),
            Frames::Many(mut v) => {
                v.push(b);
                *self = Frames::Many(v);
            }
        }
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        match self {
            Frames::Empty => 0,
            Frames::One(_) => 1,
            Frames::Many(v) => v.len(),
        }
    }

    /// Whether there are no frames at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, Frames::Empty)
    }

    /// Total payload length across all frames.
    pub fn total_len(&self) -> usize {
        self.as_slice().iter().map(Bytes::len).sum()
    }

    /// The frames as a slice, in submission order.
    pub fn as_slice(&self) -> &[Bytes] {
        match self {
            Frames::Empty => &[],
            Frames::One(b) => std::slice::from_ref(b),
            Frames::Many(v) => v.as_slice(),
        }
    }

    /// Iterates over the frames in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Bytes> {
        self.as_slice().iter()
    }

    /// Takes the frames out, leaving `Empty` behind.
    pub fn take(&mut self) -> Frames {
        std::mem::take(self)
    }

    /// Collapses into a single contiguous `Bytes`: `None` when empty, the
    /// frame itself (no copy) for one frame, and a single-allocation
    /// concatenation otherwise. Use only where a contiguous view is truly
    /// required; frame-aware decoding avoids the copy.
    pub fn into_bytes(self) -> Option<Bytes> {
        match self {
            Frames::Empty => None,
            Frames::One(b) => Some(b),
            Frames::Many(v) => {
                let total: usize = v.iter().map(Bytes::len).sum();
                let mut out = BytesMut::with_capacity(total);
                for f in &v {
                    out.extend_from_slice(f);
                }
                Some(out.freeze())
            }
        }
    }

    /// Copies all frames into one contiguous `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        for f in self.iter() {
            out.extend_from_slice(f);
        }
        out
    }
}

impl From<Bytes> for Frames {
    fn from(b: Bytes) -> Self {
        Frames::One(b)
    }
}

impl From<Option<Bytes>> for Frames {
    fn from(o: Option<Bytes>) -> Self {
        match o {
            Some(b) => Frames::One(b),
            None => Frames::Empty,
        }
    }
}

impl From<Vec<Bytes>> for Frames {
    fn from(mut v: Vec<Bytes>) -> Self {
        match v.len() {
            0 => Frames::Empty,
            1 => Frames::One(v.pop().expect("len checked")),
            _ => Frames::Many(v),
        }
    }
}

impl<'a> IntoIterator for &'a Frames {
    type Item = &'a Bytes;
    type IntoIter = std::slice::Iter<'a, Bytes>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl std::fmt::Debug for Frames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Read cursor over a byte source. Getters consume from the front and panic
/// if the source is exhausted (matching the real crate's behaviour).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Discards the first `n` unread bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink in little-endian order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(head.len() + b.len(), 5);
    }

    #[test]
    fn split_off_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let tail = b.split_off(3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(&tail[..], &[4, 5]);
        let mut s = Bytes::from_static(b"hello world");
        let world = s.split_off(6);
        assert_eq!(&s[..], b"hello ");
        assert_eq!(&world[..], b"world");
    }

    #[test]
    fn le_roundtrip_through_buf_traits() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16_le(0xbeef);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(0x0123_4567_89ab_cdef);
        m.put_i64_le(-42);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xbeef);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(&b[..], b"xyz");
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn equality_and_clone_are_by_value() {
        let a = Bytes::from(vec![9u8; 16]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8; 16]);
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"tag");
        assert_eq!(s, Bytes::from(b"tag".to_vec()));
    }

    #[test]
    fn reclaim_requires_exclusivity() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        let a = a.try_reclaim().expect_err("shared: not reclaimable");
        assert_eq!(&a[..], &[1, 2, 3]);
        drop(a);
        let v = b.try_reclaim().expect("sole owner reclaims");
        assert!(v.is_empty() && v.capacity() >= 3);
        assert!(Bytes::from_static(b"abc").try_reclaim().is_err());
    }

    #[test]
    fn pool_round_trips_storage() {
        let pool = BufPool::new(4);
        let mut m = pool.take(64);
        m.put_slice(b"hello");
        let cap = m.capacity();
        let b = m.freeze();
        assert!(pool.recycle(b));
        assert_eq!(pool.free_len(), 1);
        let m2 = pool.take(16);
        assert_eq!(m2.capacity(), cap, "same storage came back");
        assert!(m2.is_empty());

        // A shared buffer is dropped, not reclaimed.
        let pool2 = BufPool::new(4);
        let b = Bytes::from(vec![0u8; 8]);
        let keep = b.clone();
        assert!(!pool2.recycle(b));
        assert_eq!(pool2.free_len(), 0);
        assert_eq!(keep.len(), 8);
    }

    #[test]
    fn frames_preserve_submission_order() {
        let mut f = Frames::new();
        assert!(f.is_empty());
        assert_eq!(f.clone().into_bytes(), None);
        f.push(Bytes::from_static(b"ab"));
        assert_eq!(f.frame_count(), 1);
        assert_eq!(&f.clone().into_bytes().expect("one frame")[..], b"ab");
        f.push(Bytes::from(b"cde".to_vec()));
        f.push(Bytes::from_static(b"f"));
        assert_eq!(f.frame_count(), 3);
        assert_eq!(f.total_len(), 6);
        assert_eq!(f.to_vec(), b"abcdef");
        assert_eq!(&f.clone().into_bytes().expect("concat")[..], b"abcdef");
        let frames: Vec<&[u8]> = f.iter().map(|b| &b[..]).collect();
        assert_eq!(frames, vec![&b"ab"[..], b"cde", b"f"]);
        assert_eq!(Frames::from(None), Frames::Empty);
        assert_eq!(
            Frames::from(Some(Bytes::from_static(b"x"))).frame_count(),
            1
        );
    }
}
