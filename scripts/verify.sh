#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests, see ROADMAP.md) plus lints and
# formatting. Run from the workspace root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "== observability: example run with --trace-out/--metrics-out =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
cargo run --release --quiet --example quickstart -- \
    --trace-out "$OBS_DIR/trace.json" --metrics-out "$OBS_DIR/metrics.json"
python3 -m json.tool "$OBS_DIR/trace.json" > /dev/null
python3 -m json.tool "$OBS_DIR/metrics.json" > /dev/null
echo "trace and metrics artifacts are valid JSON"

echo "verify: all checks passed"
