#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests, see ROADMAP.md) plus lints and
# formatting. Run from the workspace root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all checks passed"
