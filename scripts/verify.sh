#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests, see ROADMAP.md) plus lints and
# formatting. Run from the workspace root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, warnings are errors, redundant clones rejected) =="
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "== rustfmt check =="
cargo fmt --check

echo "== engine benchmark: micro --quick smoke + BENCH_engine.json schema =="
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
cargo bench --quiet -p amt-bench --bench micro -- \
    --quick --engine-only --out "$TMP_DIR/BENCH_engine.json"
python3 - "$TMP_DIR/BENCH_engine.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "amtlc-bench-engine-v1", d.get("schema")
want = {"churn_chain_near", "churn_preload_drain", "schedule_now_burst",
        "schedule_cancel", "mixed_horizon", "fig4_point"}
got = set(d["scenarios"])
assert want <= got, f"missing scenarios: {want - got}"
for name, s in d["scenarios"].items():
    assert s["events"] > 0 and s["ns_per_event"] > 0, name
print(f"BENCH_engine.json valid ({len(got)} scenarios)")
PY

echo "== comm datapath: micro scenarios + BENCH_comm.json schema/bounds =="
cargo bench --quiet -p amt-bench --bench comm_datapath -- \
    --quick --out "$TMP_DIR/BENCH_comm.json"
python3 - "$TMP_DIR/BENCH_comm.json" BENCH_comm.json <<'PY'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
assert fresh["schema"] == "amtlc-bench-comm-v1", fresh.get("schema")
sizes = ["64", "256", "1024", "4096"]
assert set(fresh["match_churn"]) == set(sizes)
# O(1) matching: hash comparisons/match stay flat 64 -> 4096 outstanding
# receives while the reference linear scan grows roughly linearly.
h64 = fresh["match_churn"]["64"]["hash_cmp_per_match"]
h4k = fresh["match_churn"]["4096"]["hash_cmp_per_match"]
r64 = fresh["match_churn"]["64"]["ref_cmp_per_match"]
r4k = fresh["match_churn"]["4096"]["ref_cmp_per_match"]
assert h4k <= 1.5 * h64, f"hash matcher not flat: {h64} -> {h4k}"
assert r4k >= 8.0 * r64, f"reference unexpectedly sublinear: {r64} -> {r4k}"
# Allocation budget: fresh (quick) allocs/msg may not regress past the
# committed full-run columns beyond warm-up tolerance.
for scen in ("am_flood", "put_rendezvous"):
    for backend, bound in committed["alloc_per_msg"][scen].items():
        got = fresh["alloc_per_msg"][scen][backend]
        limit = bound * 1.3 + 3.0
        assert got <= limit, f"{scen}/{backend}: {got} allocs/msg > bound {limit:.2f}"
print("BENCH_comm.json valid; matcher flat, allocation budget held")
PY

echo "== scheduler datapath: sched_overhead --quick + BENCH_sched.json schema/bounds =="
cargo bench --quiet -p amt-bench --bench sched_overhead -- \
    --quick --out "$TMP_DIR/BENCH_sched.json"
python3 - "$TMP_DIR/BENCH_sched.json" BENCH_sched.json <<'PY'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
assert fresh["schema"] == "amtlc-bench-sched-v1", fresh.get("schema")
assert set(fresh["throughput"]) == {"fine_grained_dag", "tlr_cholesky"}
# Allocation budget: the dense datapath must stay well under the seed
# structures on the scheduler-bound scenario (allocation counts are
# deterministic, so the margin only absorbs size differences vs the
# committed full run).
fg = fresh["throughput"]["fine_grained_dag"]
ref, dense = fg["reference"]["allocs_per_task"], fg["dense"]["allocs_per_task"]
assert dense <= 0.7 * ref, f"dense allocs/task {dense} > 0.7x reference {ref}"
bound = committed["throughput"]["fine_grained_dag"]["dense"]["allocs_per_task"]
limit = bound * 1.3 + 1.0
assert dense <= limit, f"dense allocs/task {dense} > committed bound {limit:.2f}"
# Windowed discovery: peak live bytes must stay a small fraction of the
# full unroll even at quick sizes (full run commits >= 4x).
mem = fresh["windowed_memory"]
ratio = mem["full_unroll_peak_bytes"] / mem["windowed_peak_bytes"]
assert ratio >= 2.0, f"windowed peak-memory ratio {ratio:.2f} < 2"
assert committed["windowed_memory"]["ratio"] >= 4.0, "committed ratio < 4"
print(f"BENCH_sched.json valid; allocs/task {dense:.2f} vs ref {ref:.2f}, "
      f"quick window ratio {ratio:.1f}x")
PY

echo "== message rate: msg_rate --quick + BENCH_msgrate.json schema/gates =="
cargo bench --quiet -p amt-bench --bench msg_rate -- \
    --quick --out "$TMP_DIR/BENCH_msgrate.json"
python3 - "$TMP_DIR/BENCH_msgrate.json" BENCH_msgrate.json <<'PY'
import json, sys
for path, quick in ((sys.argv[1], True), (sys.argv[2], False)):
    d = json.load(open(path))
    assert d["schema"] == "amtlc-bench-msgrate-v1", (path, d.get("schema"))
    assert d["quick"] is quick, (path, "quick flag")
    assert set(d["scenarios"]) == {"tlr_wide", "stencil"}, path
    for name, scen in d["scenarios"].items():
        assert set(scen) == {"flat", "batched", "batched_tree"}, (path, name)
        flat = scen["flat"]
        for mode, r in scen.items():
            assert r["msgs_on_wire"] > 0 and r["tts_s"] > 0, (path, name, mode)
            # Batching/trees change message counts only: same records
            # submitted, same payload deliveries.
            assert r["records_submitted"] == flat["records_submitted"], (path, name, mode)
            assert r["data_puts"] == flat["data_puts"], (path, name, mode)
    # The tentpole gate, on the wide-fan-out scenario: batched+tree puts
    # >= 2x fewer control messages on the wire at <= 1.05x flat's
    # time-to-solution (virtual time: deterministic, no noise margin).
    bt = d["scenarios"]["tlr_wide"]["batched_tree"]
    assert bt["reduction_vs_flat"] >= 2.0, (path, bt["reduction_vs_flat"])
    assert bt["time_vs_flat"] <= 1.05, (path, bt["time_vs_flat"])
fresh = json.load(open(sys.argv[1]))["scenarios"]["tlr_wide"]["batched_tree"]
print(f"BENCH_msgrate.json valid; tlr_wide batched+tree "
      f"{fresh['reduction_vs_flat']:.2f}x fewer msgs at "
      f"{fresh['time_vs_flat']:.3f}x time")
PY

echo "== cluster scale: scale --quick + BENCH_scale.json schema/gates =="
cargo bench --quiet -p amt-bench --bench scale -- \
    --quick --out "$TMP_DIR/BENCH_scale.json"
python3 - "$TMP_DIR/BENCH_scale.json" BENCH_scale.json <<'PY'
import json, sys
for path, quick in ((sys.argv[1], True), (sys.argv[2], False)):
    d = json.load(open(path))
    assert d["schema"] == "amtlc-bench-scale-v1", (path, d.get("schema"))
    assert d["quick"] is quick, (path, "quick flag")
    assert d["threads_available"] >= 1
    nodes = [r["nodes"] for r in d["scaling"]]
    assert nodes == ([32, 128] if quick else [32, 128, 512, 1024]), (path, nodes)
    for r in d["scaling"] + [d["million_task"]]:
        assert r["tasks"] > 0 and r["sim_events"] > 0, (path, r)
        assert r["events_per_sec"] > 0 and r["peak_live_bytes"] > 0, (path, r)
    # Flyweight node state: peak live bytes at most half the dense
    # baseline on the 512-sharded-chains workload (counting-allocator
    # measurements are deterministic).
    fm = d["flyweight_memory"]
    assert fm["flyweight_peak_bytes"] <= 0.5 * fm["dense_peak_bytes"], (path, fm)
    # Island-parallel DES: reports byte-identical at every island count;
    # wall-clock speedup is only gated where the cores exist (a 1-core
    # box honestly records ~<=1x).
    isl = d["islands"]
    assert isl["byte_identical"] is True, path
    if d["threads_available"] >= 4 and not quick:
        assert isl["speedup_at_max"] >= 1.5, (path, isl["speedup_at_max"])
committed = json.load(open(sys.argv[2]))
assert committed["million_task"]["tasks"] >= 1_000_000, committed["million_task"]
assert committed["million_task"]["nodes"] == 1024
print(f"BENCH_scale.json valid; flyweight ratio "
      f"{committed['flyweight_memory']['ratio']:.3f}, million-task point "
      f"{committed['million_task']['tasks']} tasks on 1024 nodes")
PY

echo "== real substrate: quickstart + TLR smoke on 2 threads (wall-clock gated) =="
# The quickstart's final section and the cross-mode oracle both run
# Cluster::execute_real; a protocol stall would hang, so cap wall time.
# Capture to a file, then grep: `grep -q` closing the pipe early would
# SIGPIPE the example mid-print.
timeout 120 cargo run --release --quiet --example quickstart -- --threads 2 \
    > "$TMP_DIR/quickstart_real.txt"
grep -q "real execution (2 thread(s))" "$TMP_DIR/quickstart_real.txt"
timeout 120 cargo test --release --quiet --test integration \
    execution_modes_agree_byte_for_byte_on_numeric_cholesky -- --exact > /dev/null
echo "real-exec smoke passed (quickstart --threads 2; cross-mode TLR oracle)"

echo "== real substrate: real_exec --quick + BENCH_exec.json schema =="
cargo bench --quiet -p amt-bench --bench real_exec -- \
    --quick --out "$TMP_DIR/BENCH_exec.json"
python3 - "$TMP_DIR/BENCH_exec.json" BENCH_exec.json <<'PY'
import json, sys
for path, quick in ((sys.argv[1], True), (sys.argv[2], False)):
    d = json.load(open(path))
    assert d["schema"] == "amtlc-bench-exec-v1", (path, d.get("schema"))
    assert d["quick"] is quick, (path, "quick flag")
    assert d["threads_available"] >= 1
    for scen in ("fine_grained_dag", "tlr_cholesky"):
        s = d[scen]
        assert set(s["per_thread"]) == {"1", "2", "4"}, (path, scen)
        for p in s["per_thread"].values():
            assert p["tasks_per_sec"] > 0 and p["wall_ms"] > 0, (path, scen)
        assert s["scaling_1_to_2"] > 0, (path, scen)
    assert d["tlr_cholesky"]["nt"] == (16 if quick else 48), path
    classes = {c["class"] for c in d["calibration"]}
    assert classes == {"gemm", "potrf", "syrk", "trsm"}, (path, classes)
    for c in d["calibration"]:
        assert c["sim_us"] > 0 and c["real_us"] > 0 and c["count"] > 0, c
    obs = d["obs_overhead"]
    for mode in ("off", "on"):
        assert obs[mode]["wall_ms"] > 0 and obs[mode]["allocs_per_task"] > 0, (path, mode)
# Observability is pay-for-what-you-use: the obs-off run's deterministic
# allocations/task may not regress past the committed full-run column.
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
off = fresh["obs_overhead"]["off"]["allocs_per_task"]
bound = committed["obs_overhead"]["off"]["allocs_per_task"] * 1.3 + 3.0
assert off <= bound, f"obs-off allocs/task {off} > committed bound {bound:.2f}"
# Multicore boxes must show real 1 -> 2 scaling; single-core boxes
# honestly can't (the committed run records whatever this box measured).
if fresh["threads_available"] >= 2:
    s = fresh["fine_grained_dag"]["scaling_1_to_2"]
    assert s >= 1.3, f"multicore box but 1->2 thread scaling only {s}"
print("BENCH_exec.json valid (fresh quick + committed full)")
PY

echo "== real substrate: deque stress under TSan (best-effort, nightly only) =="
if rustup run nightly rustc --version > /dev/null 2>&1 \
   && rustup component list --toolchain nightly 2> /dev/null | grep -q "rust-src (installed)"; then
    RUSTFLAGS="-Zsanitizer=thread" timeout 300 \
        cargo +nightly test -p amt-exec --release -Zbuild-std \
        --target "$(rustc -vV | sed -n 's/^host: //p')" -- hammer \
        && echo "deque stress passed under ThreadSanitizer" \
        || { echo "TSan run failed"; exit 1; }
else
    timeout 300 cargo test --release --quiet -p amt-exec -- hammer > /dev/null
    echo "nightly+rust-src unavailable; deque stress ran in plain release mode"
fi

echo "== golden fig4 point: virtual-time byte-identity across backends, --jobs, --islands =="
for jobs in 1 3; do
    cargo bench --quiet -p amt-bench --bench fig4_tile_scaling -- --golden --jobs "$jobs" \
        > "$TMP_DIR/golden_fig4.txt"
    diff -u results/golden_fig4.txt "$TMP_DIR/golden_fig4.txt"
done
# The island-parallel DES must reproduce the monolithic engine byte for
# byte at every island count (DESIGN.md §3.10).
for islands in 1 2 4; do
    cargo bench --quiet -p amt-bench --bench fig4_tile_scaling -- --golden --islands "$islands" \
        > "$TMP_DIR/golden_fig4.txt"
    diff -u results/golden_fig4.txt "$TMP_DIR/golden_fig4.txt"
done
echo "golden fig4 report is byte-identical (jobs 1, 3; islands 1, 2, 4)"

echo "== observability: example run with --trace-out/--metrics-out =="
cargo run --release --quiet --example quickstart -- \
    --trace-out "$TMP_DIR/trace.json" --metrics-out "$TMP_DIR/metrics.json"
python3 -m json.tool "$TMP_DIR/trace.json" > /dev/null
python3 -m json.tool "$TMP_DIR/metrics.json" > /dev/null
echo "trace and metrics artifacts are valid JSON"

echo "== observability: traced 2-thread real execution (tlr_cholesky) =="
timeout 300 cargo run --release --quiet --example tlr_cholesky -- --threads 2 \
    --trace-out "$TMP_DIR/real_trace.json" \
    --metrics-out "$TMP_DIR/real_metrics.json" > /dev/null
python3 - "$TMP_DIR/real_trace.json" "$TMP_DIR/real_metrics.json" <<'PY'
import json, sys
ev = json.load(open(sys.argv[1]))["traceEvents"]
spans = [e for e in ev if e["ph"] == "X"]
tracks = {e["args"]["name"] for e in ev
          if e["ph"] == "M" and e["name"] == "thread_name"}
assert any(t.startswith("n0.w") for t in tracks), tracks
kernels = {e["name"] for e in spans} & {"gemm", "potrf", "syrk", "trsm"}
assert kernels, "no kernel spans in the real trace"
starts = sum(1 for e in ev if e["ph"] == "s")
ends = sum(1 for e in ev if e["ph"] == "f")
assert starts == ends, f"unpaired steal flows: {starts} starts, {ends} ends"
assert any(e["ph"] == "C" for e in ev), "no depth counters"
m = json.load(open(sys.argv[2]))
assert m["substrate"] == "real", m.get("substrate")
pool = m["pool"]
assert pool["spawns"] == pool["executions"] > 0, pool
assert pool["workers"] == 2, pool
print(f"real trace valid: {len(spans)} spans, {starts} steal arrows, "
      f"{pool['executions']} pool executions")
PY

echo "== observability: calibrate -> re-simulate round trip (quickstart) =="
timeout 120 cargo run --release --quiet --example quickstart -- --threads 2 \
    --calibrate-out "$TMP_DIR/calib.json" > /dev/null
python3 - "$TMP_DIR/calib.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))
assert c["schema"] == "amtlc-calib-v1", c.get("schema")
assert c["threads"] == 2 and c["tasks"] > 0
assert set(c["classes"]) == {"map", "shuffle", "reduce"}, c["classes"]
want = {"activate_record_ns", "get_request_ns", "arrival_ns", "task_overhead_ns"}
assert set(c["records"]) == want, c["records"]
for fam in ("classes", "records"):
    for name, s in c[fam].items():
        assert s["count"] > 0 and s["median_ns"] >= 0, (fam, name, s)
print(f"calibration profile valid ({c['tasks']} tasks sampled)")
PY
timeout 120 cargo run --release --quiet --example quickstart -- \
    --cost-model "$TMP_DIR/calib.json" \
    --metrics-out "$TMP_DIR/resim_metrics.json" > "$TMP_DIR/resim.txt"
grep -q "matches sequential oracle" "$TMP_DIR/resim.txt"
python3 - "$TMP_DIR/resim_metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["substrate"] == "virtual" and m["makespan_ns"] > 0
print("simulator accepted the measured cost model (valid virtual run)")
PY

echo "== self-tuning: autotune --quick sweep + schema + adaptive-vs-static gates =="
cargo bench --quiet -p amt-bench --bench autotune -- --quick --jobs 3 \
    --autotune-out "$TMP_DIR/tune.json" --out "$TMP_DIR/BENCH_tune.json" > "$TMP_DIR/autotune.txt"
python3 - "$TMP_DIR/tune.json" "$TMP_DIR/BENCH_tune.json" BENCH_tune.json <<'PY'
import json, sys
prof = json.load(open(sys.argv[1]))
assert prof["schema"] == "amtlc-tune-v1", prof.get("schema")
for key in ("eager_put_max", "batch_window_ns", "get_window", "adaptive",
            "cost_model", "knee_bytes", "overlap_millis", "candidates"):
    assert key in prof, f"tune profile missing {key}"
assert prof["adaptive"] in (0, 1), prof["adaptive"]
for path in sys.argv[2:]:
    d = json.load(open(path))
    assert d["schema"] == "amtlc-bench-tune-v1", (path, d.get("schema"))
    base, best, bim = d["baseline"], d["best"], d["bimodal"]
    for p in (base, d["adaptive"], best):
        for key in ("eager_put_max", "batch_window_ns", "get_window",
                    "adaptive", "knee_bytes", "overlap_millis", "tlr_tts_s"):
            assert key in p, (path, key)
    # Gate: the sweep winner must beat the static baseline — knee no worse,
    # overlap no worse, at least one strictly better or equal-with-adaptive.
    assert best["knee_bytes"] <= base["knee_bytes"], (path, best, base)
    assert best["overlap_millis"] >= base["overlap_millis"], (path, best, base)
    # Gate: the online controller must strictly beat static on the bimodal
    # message-size regression workload.
    assert bim["adaptive_tts_s"] < bim["static_tts_s"], (path, bim)
d = json.load(open(sys.argv[2]))
# Round trip: the emitted amtlc-tune-v1 profile IS the sweep winner.
for key in ("eager_put_max", "batch_window_ns", "get_window", "knee_bytes",
            "overlap_millis"):
    assert prof[key] == d["best"][key], (key, prof, d["best"])
assert bool(prof["adaptive"]) == d["best"]["adaptive"]
print("autotune artifacts valid; adaptive >= static on tlr_wide, strictly "
      "better on bimodal (fresh quick + committed)")
PY
# The golden fig4 diffs above ran with the controller at its default (off):
# their byte-identity doubles as the controller-off no-change gate.

echo "verify: all checks passed"
