#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests, see ROADMAP.md) plus lints and
# formatting. Run from the workspace root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "== engine benchmark: micro --quick smoke + BENCH_engine.json schema =="
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
cargo bench --quiet -p amt-bench --bench micro -- \
    --quick --engine-only --out "$TMP_DIR/BENCH_engine.json"
python3 - "$TMP_DIR/BENCH_engine.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "amtlc-bench-engine-v1", d.get("schema")
want = {"churn_chain_near", "churn_preload_drain", "schedule_now_burst",
        "schedule_cancel", "mixed_horizon", "fig4_point"}
got = set(d["scenarios"])
assert want <= got, f"missing scenarios: {want - got}"
for name, s in d["scenarios"].items():
    assert s["events"] > 0 and s["ns_per_event"] > 0, name
print(f"BENCH_engine.json valid ({len(got)} scenarios)")
PY

echo "== golden fig4 point: virtual-time byte-identity across backends =="
cargo bench --quiet -p amt-bench --bench fig4_tile_scaling -- --golden \
    > "$TMP_DIR/golden_fig4.txt"
diff -u results/golden_fig4.txt "$TMP_DIR/golden_fig4.txt"
echo "golden fig4 report is byte-identical"

echo "== observability: example run with --trace-out/--metrics-out =="
cargo run --release --quiet --example quickstart -- \
    --trace-out "$TMP_DIR/trace.json" --metrics-out "$TMP_DIR/metrics.json"
python3 -m json.tool "$TMP_DIR/trace.json" > /dev/null
python3 -m json.tool "$TMP_DIR/metrics.json" > /dev/null
echo "trace and metrics artifacts are valid JSON"

echo "verify: all checks passed"
